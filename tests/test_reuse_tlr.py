"""Trace-level reuse plans and latency models."""

import pytest

from repro.core.reuse_tlr import (
    ConstantReuseLatency,
    ProportionalReuseLatency,
    tlr_reuse_plan,
)
from repro.core.stats import trace_io_stats
from repro.core.traces import maximal_reusable_spans, span_from_range
from repro.isa.opcodes import Opcode
from repro.isa.registers import loc_mem
from repro.vm.trace import DynInst


def make_inst(pc, reads, writes):
    return DynInst(pc, Opcode.ADD, tuple(reads), tuple(writes), 1, pc + 1)


def simple_stream(n=6):
    return [make_inst(i, [(1, 0)], [(2, 1)]) for i in range(n)]


class TestLatencyModels:
    def test_constant(self):
        span = span_from_range(simple_stream(), 0, 3)
        assert ConstantReuseLatency(2.0).latency_for(span) == 2.0

    def test_proportional_counts_io(self):
        stream = [make_inst(0, [(1, 0), (3, 0)], [(2, 1)])]
        span = span_from_range(stream, 0, 1)
        # 2 inputs + 1 output = 3 values; K = 1/16
        model = ProportionalReuseLatency(1 / 16)
        assert model.latency_for(span) == pytest.approx(3 / 16)

    def test_proportional_k_one(self):
        stream = [make_inst(0, [(1, 0)], [(2, 1)])]
        span = span_from_range(stream, 0, 1)
        assert ProportionalReuseLatency(1.0).latency_for(span) == pytest.approx(2.0)


class TestTlrPlan:
    def test_plan_marks_span_instructions(self):
        stream = simple_stream()
        spans = [span_from_range(stream, 1, 4)]
        plan = tlr_reuse_plan(stream, spans, ConstantReuseLatency(1.0))
        assert plan[0] is None
        assert plan[1] is plan[2] is plan[3]  # shared point per span
        assert plan[4] is None
        assert plan[1].fetch_free

    def test_plan_inputs_are_span_live_ins(self):
        stream = simple_stream()
        spans = [span_from_range(stream, 0, 2)]
        plan = tlr_reuse_plan(stream, spans, ConstantReuseLatency(1.0))
        assert plan[0].inputs == (1,)

    def test_overlapping_spans_rejected(self):
        stream = simple_stream()
        spans = [span_from_range(stream, 0, 3), span_from_range(stream, 2, 5)]
        with pytest.raises(ValueError, match="overlap"):
            tlr_reuse_plan(stream, spans, ConstantReuseLatency(1.0))

    def test_span_past_end_rejected(self):
        stream = simple_stream()
        span = span_from_range(stream, 2, 6)
        with pytest.raises(ValueError):
            tlr_reuse_plan(stream[:4], [span], ConstantReuseLatency(1.0))

    def test_unsorted_spans_accepted(self):
        stream = simple_stream()
        spans = [span_from_range(stream, 4, 6), span_from_range(stream, 0, 2)]
        plan = tlr_reuse_plan(stream, spans, ConstantReuseLatency(1.0))
        assert plan[0] is not None and plan[4] is not None

    def test_fetch_free_flag_forwarded(self):
        stream = simple_stream()
        spans = [span_from_range(stream, 0, 2)]
        plan = tlr_reuse_plan(
            stream, spans, ConstantReuseLatency(1.0), fetch_free=False
        )
        assert not plan[0].fetch_free


class TestTraceIOStats:
    def test_empty(self):
        stats = trace_io_stats([])
        assert stats.trace_count == 0
        assert stats.avg_trace_size == 0.0

    def test_single_span(self):
        mem = loc_mem(7)
        stream = [
            make_inst(0, [(1, 5), (mem, 2)], [(2, 1)]),
            make_inst(1, [(2, 1)], [(mem, 3)]),
        ]
        stats = trace_io_stats([span_from_range(stream, 0, 2)])
        assert stats.trace_count == 1
        assert stats.avg_trace_size == 2.0
        assert stats.avg_inputs == 2.0
        assert stats.avg_reg_inputs == 1.0
        assert stats.avg_mem_inputs == 1.0
        assert stats.avg_outputs == 2.0
        assert stats.reads_per_instruction == pytest.approx(1.0)
        assert stats.writes_per_instruction == pytest.approx(1.0)

    def test_averaging_over_spans(self):
        stream = simple_stream(6)
        spans = maximal_reusable_spans(
            stream, [True, True, False, True, True, True]
        )
        stats = trace_io_stats(spans)
        assert stats.trace_count == 2
        assert stats.avg_trace_size == pytest.approx(2.5)
        assert stats.total_instructions == 5
