"""RL language front end: lexer and parser."""

import pytest

from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Call,
    If,
    IndexRef,
    IntLiteral,
    Return,
    Unary,
    VarRef,
    While,
)
from repro.lang.lexer import LexError, Token, tokenize
from repro.lang.parser import ParseError, parse


class TestLexer:
    def test_simple_tokens(self):
        tokens = tokenize("var x = 5")
        kinds = [(t.kind, t.text) for t in tokens]
        assert kinds == [
            ("keyword", "var"), ("ident", "x"), ("op", "="), ("int", "5"),
            ("eof", ""),
        ]

    def test_comments_stripped(self):
        tokens = tokenize("# a comment\nvar x # trailing\n")
        assert [t.text for t in tokens if t.kind != "eof"] == ["var", "x"]

    def test_line_numbers(self):
        tokens = tokenize("var\nx\n\ny")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 4

    def test_hex_literal(self):
        assert tokenize("0xff")[0] == Token("int", "0xff", 1)

    def test_two_char_operators(self):
        texts = [t.text for t in tokenize("a <= b >> 2 != c")]
        assert "<=" in texts and ">>" in texts and "!=" in texts

    def test_malformed_number(self):
        with pytest.raises(LexError):
            tokenize("12abc")

    def test_malformed_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="'@'"):
            tokenize("var @")


class TestParser:
    def _main_body(self, body: str):
        module = parse(f"func main() {{ {body} }}")
        return module.functions[0].body

    def test_global_scalar(self):
        module = parse("var x = 7\nfunc main() { return 0 }")
        g = module.globals[0]
        assert (g.name, g.size, g.initial) == ("x", 1, (7,))

    def test_global_negative_initial(self):
        module = parse("var x = -3\nfunc main() { return 0 }")
        assert module.globals[0].initial == (-3,)

    def test_global_array(self):
        module = parse("var a[8] = {1, 2, 3}\nfunc main() { return 0 }")
        g = module.globals[0]
        assert g.size == 8 and g.initial == (1, 2, 3)

    def test_array_too_many_initialisers(self):
        with pytest.raises(ParseError, match="too many"):
            parse("var a[2] = {1, 2, 3}\nfunc main() { return 0 }")

    def test_zero_size_array(self):
        with pytest.raises(ParseError, match="positive"):
            parse("var a[0]\nfunc main() { return 0 }")

    def test_precedence(self):
        (stmt,) = self._main_body("return 1 + 2 * 3")
        assert isinstance(stmt, Return)
        expr = stmt.value
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.right, Binary) and expr.right.op == "*"

    def test_parentheses_override(self):
        (stmt,) = self._main_body("return (1 + 2) * 3")
        expr = stmt.value
        assert expr.op == "*"
        assert isinstance(expr.left, Binary) and expr.left.op == "+"

    def test_comparison_chain_levels(self):
        (stmt,) = self._main_body("return 1 < 2 == 1")
        expr = stmt.value
        assert expr.op == "==" and expr.left.op == "<"

    def test_unary(self):
        (stmt,) = self._main_body("return -x + !y")
        expr = stmt.value
        assert isinstance(expr.left, Unary) and expr.left.op == "-"
        assert isinstance(expr.right, Unary) and expr.right.op == "!"

    def test_call_and_index(self):
        body = self._main_body("a[i] = f(1, g(2))")
        (stmt,) = body
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.target, IndexRef)
        assert isinstance(stmt.value, Call)
        assert isinstance(stmt.value.args[1], Call)

    def test_if_else_if(self):
        (stmt,) = self._main_body("if (x) { y = 1 } else if (z) { y = 2 }")
        assert isinstance(stmt, If)
        assert isinstance(stmt.else_body[0], If)

    def test_while(self):
        (stmt,) = self._main_body("while (i < 10) { i = i + 1 }")
        assert isinstance(stmt, While)

    def test_too_many_params(self):
        with pytest.raises(ParseError, match="4 parameters"):
            parse("func f(a, b, c, d, e) { return 0 }\nfunc main() { return 0 }")

    def test_too_many_args(self):
        with pytest.raises(ParseError, match="4 arguments"):
            parse("func main() { return f(1, 2, 3, 4, 5) }")

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError, match="assignment target"):
            parse("func main() { 1 = 2 }")

    def test_unterminated_block(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse("func main() { var x = 1")

    def test_local_array_rejected(self):
        with pytest.raises(ParseError, match="top level"):
            parse("func main() { var a[4] }")

    def test_garbage_at_top_level(self):
        with pytest.raises(ParseError, match="top level"):
            parse("return 0")
