"""Shape checks against the paper's published numbers."""

import pytest

from repro.exp.config import ExperimentConfig
from repro.exp.paper_reference import PAPER, shape_checks, shape_report
from repro.exp.runner import collect_profiles


@pytest.fixture(scope="module")
def profiles():
    # the full suite at a modest budget: shape checks need every kernel
    return collect_profiles(ExperimentConfig(max_instructions=8_000))


class TestPaperConstants:
    def test_reference_values_present(self):
        assert PAPER["fig6_avg_w256"] == pytest.approx(3.63)
        assert PAPER["fig3_min_program"] == "applu"
        assert PAPER["fig9_4k_reuse_pct"] == pytest.approx(25.0)


class TestShapeChecks:
    def test_all_targeted_shapes_hold(self, profiles):
        checks = shape_checks(profiles)
        failing = [c.claim for c in checks if not c.holds]
        assert not failing, f"shape regressions: {failing}"

    def test_check_count(self, profiles):
        assert len(shape_checks(profiles)) >= 8

    def test_report_renderable(self, profiles):
        from repro.exp.report import render

        text = render(shape_report(profiles))
        assert "hydro2d" in text
        assert "NO" not in text
