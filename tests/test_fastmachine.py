"""FastMachine differential suite: ``Machine`` is the oracle.

The fast backend's whole contract is *bit-identical traces*: for any
program, budget and machine state it must produce exactly the trace,
final architectural state and faults of the reference interpreter.
Every test here runs both backends and compares — over handwritten
edge cases, every workload kernel, and hypothesis-generated
``repro.lang`` programs.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.workloads  # registers the kernels
from repro.lang import compile_source
from repro.vm import backends
from repro.vm.assembler import assemble
from repro.vm.errors import VMError
from repro.vm.fastmachine import (
    DEFAULT_HOT_THRESHOLD,
    FastMachine,
    discover_blocks,
    form_trace,
    generate_block_source,
    unroll_loop_path,
)
from repro.vm.machine import Machine
from repro.vm.trace import trace_identical
from repro.workloads.base import all_workloads, build_program, run_workload

KERNELS = [w.name for w in all_workloads()]


def assert_state_identical(ref: Machine, fast: Machine) -> None:
    assert fast.regs == ref.regs
    assert fast.fregs == ref.fregs
    assert fast.memory == ref.memory
    assert fast.pc == ref.pc
    assert fast.instruction_count == ref.instruction_count
    assert fast.halted == ref.halted


def differential(program, budget, *, hot_threshold=1):
    """Run both backends; assert identical traces, state and faults.

    ``hot_threshold=1`` compiles every block on its second entry, so
    even short runs exercise the compiled path, not the interpreter
    fallback.  Returns the (shared) outcome for further assertions.
    """
    ref = Machine(program)
    fast = FastMachine(program, hot_threshold=hot_threshold)
    ref_err = fast_err = None
    ref_trace = fast_trace = None
    try:
        ref_trace = ref.run(max_instructions=budget)
    except VMError as exc:
        ref_err = exc
    try:
        fast_trace = fast.run(max_instructions=budget)
    except VMError as exc:
        fast_err = exc
    assert (ref_err is None) == (fast_err is None), (
        f"fault divergence: oracle={ref_err!r} fast={fast_err!r}"
    )
    if ref_err is not None:
        assert str(fast_err) == str(ref_err)
        assert fast_err.pc == ref_err.pc
        assert fast_err.line == ref_err.line
    else:
        assert trace_identical(ref_trace, fast_trace)
    assert_state_identical(ref, fast)
    return ref, fast


def differential_asm(source, budget=100_000, **kw):
    return differential(assemble(source), budget, **kw)


# ----------------------------------------------------------------------
# handwritten edge cases
# ----------------------------------------------------------------------

class TestEdgeCases:
    def test_tight_counted_loop(self):
        differential_asm(
            "li r1, 0\n"
            "li r2, 10000\n"
            "loop: addi r1, r1, 1\n"
            "blt r1, r2, loop\n"
            "halt\n"
        )

    def test_budget_truncation_mid_block(self):
        # odd budgets end inside compiled blocks and unrolled loops
        prog = assemble(
            "li r1, 0\n"
            "li r2, 100000\n"
            "loop: addi r1, r1, 1\n"
            "addi r3, r1, 2\n"
            "addi r4, r3, 3\n"
            "blt r1, r2, loop\n"
            "halt\n"
        )
        for budget in (7, 31, 997, 12345):
            differential(prog, budget)

    def test_resumed_runs_accumulate(self):
        src = (
            "li r1, 0\n"
            "li r2, 1000000\n"
            "loop: addi r1, r1, 1\n"
            "blt r1, r2, loop\n"
            "halt\n"
        )
        ref = Machine(assemble(src))
        fast = FastMachine(assemble(src), hot_threshold=1)
        for budget in (1000, 7777, 50_001):
            a = ref.run(max_instructions=budget)
            b = fast.run(max_instructions=budget)
            assert trace_identical(a, b)
            assert_state_identical(ref, fast)

    def test_overflow_wraps(self):
        differential_asm(
            "li r1, 0x7fffffffffffffff\n"
            "li r2, 1\n"
            "li r5, 0\n"
            "loop: add r3, r1, r2\n"
            "mul r4, r1, r1\n"
            "slli r6, r1, 3\n"
            "addi r5, r5, 1\n"
            "li r7, 50\n"
            "blt r5, r7, loop\n"
            "halt\n"
        )

    def test_division_fault_mid_block(self):
        # r2 hits zero after enough iterations for the block to be hot
        differential_asm(
            "li r1, 100\n"
            "li r2, 20\n"
            "loop: div r3, r1, r2\n"
            "addi r2, r2, -1\n"
            "li r4, -1\n"
            "bgt r2, r4, loop\n"
            "halt\n"
        )

    def test_remainder_fault(self):
        differential_asm(
            "li r1, 7\n"
            "li r2, 3\n"
            "loop: rem r3, r1, r2\n"
            "addi r2, r2, -1\n"
            "li r4, -2\n"
            "bgt r2, r4, loop\n"
            "halt\n"
        )

    def test_negative_memory_fault_mid_block(self):
        differential_asm(
            "li r1, 40\n"
            "loop: sw r1, 0(r1)\n"
            "addi r1, r1, -8\n"
            "li r2, -100\n"
            "bgt r1, r2, loop\n"
            "halt\n"
        )

    def test_pc_out_of_range_fault(self):
        differential_asm(
            "li r1, 0\n"
            "loop: addi r1, r1, 1\n"
            "li r2, 30\n"
            "blt r1, r2, loop\n"
            "addi r3, r1, 0\n"  # falls off the end: pc fault
        )

    def test_writes_to_r0_are_discarded(self):
        differential_asm(
            "li r1, 0\n"
            "li r3, 99\n"
            "loop: add r0, r1, r3\n"
            "addi r0, r0, 5\n"
            "addi r1, r1, 1\n"
            "li r2, 200\n"
            "blt r1, r2, loop\n"
            "halt\n"
        )

    def test_jr_into_block_middle(self):
        # jal records a return address that jr later lands on, entering
        # the middle of an already-compiled block
        differential_asm(
            "li r1, 0\n"
            "loop: jal r31, sub\n"
            "addi r1, r1, 1\n"
            "li r2, 300\n"
            "blt r1, r2, loop\n"
            "halt\n"
            "sub: addi r3, r1, 7\n"
            "jr r31\n"
        )

    def test_float_memory_and_ops(self):
        differential_asm(
            "fli f1, 1.5\n"
            "fli f2, 0.25\n"
            "li r1, 64\n"
            "li r4, 0\n"
            "loop: fadd f3, f1, f2\n"
            "fmul f1, f3, f2\n"
            "fsw f1, 0(r1)\n"
            "flw f4, 0(r1)\n"
            "addi r4, r4, 1\n"
            "li r5, 400\n"
            "blt r4, r5, loop\n"
            "halt\n"
        )

    def test_halt_inside_hot_region(self):
        differential_asm(
            "li r1, 0\n"
            "loop: addi r1, r1, 1\n"
            "li r2, 500\n"
            "beq r1, r2, done\n"
            "j loop\n"
            "done: halt\n"
        )

    def test_run_after_halt(self):
        prog = assemble("li r1, 1\nhalt")
        ref, fast = differential(prog, 100)
        # a second run on a halted machine yields an empty trace
        a = ref.run(max_instructions=10)
        b = fast.run(max_instructions=10)
        assert len(a) == len(b) == 0
        assert trace_identical(a, b)
        assert_state_identical(ref, fast)

    def test_unlimited_budget_runs_to_halt(self):
        differential_asm(
            "li r1, 0\n"
            "li r2, 2000\n"
            "loop: addi r1, r1, 1\n"
            "blt r1, r2, loop\n"
            "halt\n",
            budget=None,
        )


# ----------------------------------------------------------------------
# all kernels, smoke budgets
# ----------------------------------------------------------------------

class TestKernelDifferential:
    @pytest.mark.parametrize("name", KERNELS)
    def test_kernel_smoke(self, name):
        prog = build_program(name, scale=1)
        differential(prog, 25_000, hot_threshold=DEFAULT_HOT_THRESHOLD)

    @pytest.mark.parametrize("name", ["compress", "tomcatv", "go"])
    def test_kernel_odd_budget_low_threshold(self, name):
        # low threshold maximises compiled coverage; odd budget lands
        # mid-block
        prog = build_program(name, scale=1)
        differential(prog, 7_777, hot_threshold=1)


# ----------------------------------------------------------------------
# hypothesis: generated repro.lang programs
# ----------------------------------------------------------------------

_INT = st.integers(min_value=-50, max_value=50)
_VARS = ("a", "b", "c", "s")


@st.composite
def _expr(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        if draw(st.booleans()):
            return str(draw(_INT))
        return draw(st.sampled_from(_VARS))
    op = draw(st.sampled_from(
        ["+", "-", "*", "/", "%", "&", "|", "^", "<", "<=", "==", "!="]
    ))
    lhs = draw(_expr(depth=depth + 1))
    rhs = draw(_expr(depth=depth + 1))
    return f"({lhs} {op} {rhs})"


@st.composite
def _stmt(draw, depth=0):
    kind = draw(st.sampled_from(
        ["assign", "assign", "arr", "if", "while"] if depth < 2
        else ["assign", "arr"]
    ))
    if kind == "assign":
        var = draw(st.sampled_from(_VARS))
        return [f"{var} = {draw(_expr())}"]
    if kind == "arr":
        idx = draw(st.integers(min_value=0, max_value=7))
        if draw(st.booleans()):
            return [f"arr[{idx}] = {draw(_expr())}"]
        var = draw(st.sampled_from(_VARS))
        return [f"{var} = arr[{idx}]"]
    if kind == "if":
        cond = draw(_expr())
        then = draw(_block(depth=depth + 1))
        other = draw(_block(depth=depth + 1))
        return ([f"if ({cond}) {{"] + then + ["} else {"] + other + ["}"])
    # bounded while loop: dedicated counter guarantees termination
    n = draw(st.integers(min_value=1, max_value=12))
    counter = f"t{depth}"
    body = draw(_block(depth=depth + 1))
    return (
        [f"{counter} = 0", f"while ({counter} < {n}) {{"]
        + body
        + [f"{counter} = {counter} + 1", "}"]
    )


@st.composite
def _block(draw, depth=0):
    lines: list = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        lines += draw(_stmt(depth=depth))
    return lines


@st.composite
def rl_programs(draw):
    body = draw(_block())
    decls = [f"var {v} = {draw(_INT)}" for v in _VARS]
    decls += [f"var t{d} = 0" for d in range(3)]
    lines = decls + body + ["return s"]
    return (
        "var arr[8] = {0, 1, 2, 3, 4, 5, 6, 7}\n"
        "func main() {\n" + "\n".join(lines) + "\n}\n"
    )


class TestGeneratedPrograms:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(source=rl_programs())
    def test_differential_generated(self, source):
        # division/modulo by zero faults are legal outcomes: the
        # differential helper asserts fault *parity*, not absence
        program = compile_source(source)
        differential(program, 50_000)

    @settings(max_examples=15, deadline=None)
    @given(source=rl_programs(), budget=st.integers(min_value=1, max_value=900))
    def test_differential_generated_tiny_budgets(self, source, budget):
        program = compile_source(source)
        differential(program, budget)


# ----------------------------------------------------------------------
# block formation / unrolling units
# ----------------------------------------------------------------------

class TestBlockFormation:
    def test_discover_blocks_covers_leaders(self):
        prog = build_program("compress")
        blocks = discover_blocks(prog)
        assert 0 in blocks or prog.main_pc in blocks
        for leader, path in blocks.items():
            assert path[0] == leader
            assert all(0 <= pc < len(prog.instructions) for pc in path)

    def test_unroll_pure_loop(self):
        prog = assemble(
            "li r1, 0\n"
            "loop: addi r1, r1, 1\n"
            "addi r2, r2, 2\n"
            "j loop\n"
            "halt\n"
        )
        path, _ = form_trace(prog, 1)
        unrolled = unroll_loop_path(prog, path)
        assert len(unrolled) % len(path) == 0
        assert len(unrolled) > len(path)
        assert unrolled[:len(path)] == path
        # the unrolled path must still compile
        src = generate_block_source(prog, unrolled)
        compile(src, "<test>", "exec")

    def test_unroll_leaves_nonloop_alone(self):
        prog = assemble(
            "li r1, 1\n"
            "li r2, 2\n"
            "add r3, r1, r2\n"
            "halt\n"
        )
        path, _ = form_trace(prog, 0)
        assert unroll_loop_path(prog, path) == path

    def test_block_source_is_deterministic(self):
        prog = build_program("go")
        path, _ = form_trace(prog, 0)
        assert generate_block_source(prog, path) == generate_block_source(
            prog, path
        )


# ----------------------------------------------------------------------
# backend registry and wiring
# ----------------------------------------------------------------------

class TestBackendRegistry:
    def test_registry_contents(self):
        assert backends.BACKENDS["interp"] is Machine
        assert backends.BACKENDS["fast"] is FastMachine

    def test_resolution_precedence(self, monkeypatch):
        monkeypatch.delenv(backends.BACKEND_ENV, raising=False)
        assert backends.resolve_backend(None) == backends.DEFAULT_BACKEND
        monkeypatch.setenv(backends.BACKEND_ENV, "fast")
        assert backends.resolve_backend(None) == "fast"
        # an explicit argument beats the environment
        assert backends.resolve_backend("interp") == "interp"

    def test_unknown_names_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown backend"):
            backends.resolve_backend("jit")
        monkeypatch.setenv(backends.BACKEND_ENV, "typo")
        with pytest.raises(ValueError, match="unknown backend"):
            backends.resolve_backend(None)

    def test_create_machine(self):
        prog = assemble("halt")
        assert type(backends.create_machine(prog)) is Machine
        assert type(backends.create_machine(prog, "fast")) is FastMachine

    def test_run_workload_backends_agree(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_CACHE", "1")
        a = run_workload("compress", max_instructions=20_000,
                         backend="interp")
        b = run_workload("compress", max_instructions=20_000, backend="fast")
        assert trace_identical(a, b)
        # cache entries are segregated per backend
        names = sorted(p.name for p in (tmp_path / "traces").iterdir())
        assert len(names) == 2
        assert any("-bfast-" in n for n in names)

    def test_run_workload_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv(backends.BACKEND_ENV, "fast")
        trace = run_workload("go", max_instructions=5_000)
        monkeypatch.delenv(backends.BACKEND_ENV)
        ref = run_workload("go", max_instructions=5_000, use_cache=False)
        assert trace_identical(ref, trace)
