"""Averaging helpers: paper conventions and error handling."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.means import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    harmonic_mean_speedup,
    weighted_mean,
)


class TestArithmeticMean:
    def test_simple(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert arithmetic_mean([7.5]) == 7.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_accepts_ints(self):
        assert arithmetic_mean([1, 3]) == pytest.approx(2.0)


class TestHarmonicMean:
    def test_simple(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_equal_values(self):
        assert harmonic_mean([2.5, 2.5, 2.5]) == pytest.approx(2.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, -2.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20))
    def test_never_exceeds_arithmetic(self, values):
        assert harmonic_mean(values) <= arithmetic_mean(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20))
    def test_bounded_by_extremes(self, values):
        h = harmonic_mean(values)
        assert min(values) - 1e-9 <= h <= max(values) + 1e-9


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20))
    def test_between_harmonic_and_arithmetic(self, values):
        g = geometric_mean(values)
        assert harmonic_mean(values) - 1e-9 <= g <= arithmetic_mean(values) + 1e-9


class TestWeightedMean:
    def test_equal_weights_match_arithmetic(self):
        vals = [1.0, 2.0, 6.0]
        assert weighted_mean(vals, [1, 1, 1]) == pytest.approx(arithmetic_mean(vals))

    def test_weighting(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_zero_weights_raise(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0, 2.0], [0.0, 0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            weighted_mean([], [])


class TestHarmonicSpeedup:
    def test_simple(self):
        # speedups 2.0 and 4.0 -> harmonic mean 2.67
        result = harmonic_mean_speedup([2.0, 4.0], [1.0, 1.0])
        assert result == pytest.approx(harmonic_mean([2.0, 4.0]))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            harmonic_mean_speedup([1.0], [1.0, 2.0])

    def test_identity(self):
        assert harmonic_mean_speedup([3.0, 5.0], [3.0, 5.0]) == pytest.approx(1.0)

    def test_not_nan_for_valid(self):
        assert not math.isnan(harmonic_mean_speedup([2.0], [1.0]))
