"""Telemetry registries, JSONL run manifests and the ``obs`` CLI."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import telemetry
from repro.obs.manifest import RunManifest


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """A fresh cache directory (manifests live under ``<it>/runs``)."""
    target = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
    return target


class TestTelemetry:
    def test_counters_accumulate(self):
        reg = telemetry.Telemetry()
        reg.incr("a")
        reg.incr("a", 4)
        assert reg.snapshot()["counters"] == {"a": 5}

    def test_timers_accumulate_calls(self):
        reg = telemetry.Telemetry()
        reg.add_time("stage", 0.25)
        reg.add_time("stage", 0.75)
        snap = reg.snapshot()["timers"]["stage"]
        assert snap["seconds"] == pytest.approx(1.0)
        assert snap["calls"] == 2

    def test_time_context_manager(self):
        reg = telemetry.Telemetry()
        with reg.time("block"):
            pass
        snap = reg.snapshot()["timers"]["block"]
        assert snap["calls"] == 1 and snap["seconds"] >= 0.0

    def test_merge_folds_foreign_snapshot(self):
        a = telemetry.Telemetry()
        a.incr("x", 2)
        a.add_time("t", 1.0)
        b = telemetry.Telemetry()
        b.incr("x", 3)
        b.merge(a.snapshot())
        snap = b.snapshot()
        assert snap["counters"]["x"] == 5
        assert snap["timers"]["t"]["seconds"] == pytest.approx(1.0)

    def test_scope_isolates_and_merges_outward(self):
        outer = telemetry.current()
        before = outer.counters.get("scoped", 0)
        with obs.scope() as inner:
            obs.incr("scoped", 7)
            assert inner.snapshot()["counters"]["scoped"] == 7
            # the outer registry is untouched while the scope is open
            assert outer.counters.get("scoped", 0) == before
        assert outer.counters["scoped"] == before + 7

    def test_nested_scopes(self):
        with obs.scope() as a:
            with obs.scope() as b:
                obs.incr("deep")
                assert b.counters == {"deep": 1}
            assert a.counters == {"deep": 1}

    def test_reset(self):
        reg = telemetry.Telemetry()
        reg.incr("gone")
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "timers": {}}


class TestProfilingEnabled:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert not obs.profiling_enabled()

    def test_zero_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not obs.profiling_enabled()

    def test_one_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert obs.profiling_enabled()


class TestRunManifest:
    def test_events_round_trip(self, cache_dir):
        manifest = RunManifest()
        manifest.start(("li", "gcc"), {"budget": 100})
        manifest.emit("profile_done", name="li", attempt=1, seconds=0.5)
        events = obs.read_events(manifest.path)
        assert [e["event"] for e in events] == ["run_start", "profile_done"]
        assert events[0]["workloads"] == ["li", "gcc"]
        assert all("t" in e for e in events)

    def test_truncated_final_line_tolerated(self, cache_dir):
        manifest = RunManifest()
        manifest.emit("run_start", run_id=manifest.run_id)
        manifest.emit("profile_done", name="li")
        # simulate a run killed mid-write: chop the last line in half
        raw = manifest.path.read_bytes()
        manifest.path.write_bytes(raw[: len(raw) - 20])
        events = obs.read_events(manifest.path)
        assert [e["event"] for e in events] == ["run_start"]

    def test_manifests_live_under_cache_runs(self, cache_dir):
        manifest = RunManifest()
        manifest.emit("run_start")
        assert manifest.path.parent == cache_dir / "runs"

    def test_distinct_run_ids(self, cache_dir):
        assert RunManifest().run_id != RunManifest().run_id

    def test_list_runs_sorted_and_filtered(self, cache_dir):
        for _ in range(2):
            RunManifest().emit("run_start")
        (cache_dir / "runs" / "not-a-manifest.txt").write_text("x")
        runs = obs.list_runs()
        assert len(runs) == 2
        assert all(p.name.startswith("run-") for p in runs)

    def test_find_run_latest_and_substring(self, cache_dir):
        first = RunManifest(run_id="20250101-000000-p1-1")
        first.emit("run_start")
        second = RunManifest(run_id="20250101-000000-p1-2")
        second.emit("run_start")
        assert obs.find_run("latest") == second.path
        assert obs.find_run("p1-1") == first.path
        with pytest.raises(FileNotFoundError):
            obs.find_run("nonexistent")

    def test_find_run_empty_dir(self, cache_dir):
        with pytest.raises(FileNotFoundError):
            obs.find_run("latest")


class TestManifestConcurrency:
    def test_torn_final_line_counted(self, cache_dir):
        manifest = RunManifest()
        manifest.emit("run_start", run_id=manifest.run_id)
        manifest.emit("profile_done", name="li")
        raw = manifest.path.read_bytes()
        manifest.path.write_bytes(raw[: len(raw) - 20])
        events, torn = obs.read_manifest(manifest.path)
        assert [e["event"] for e in events] == ["run_start"]
        assert torn == 1

    def test_concurrent_appends_never_tear(self, cache_dir):
        """4 processes × 50 O_APPEND events into ONE file: all parse."""
        import os
        import subprocess
        import sys

        manifest = RunManifest(run_id="shared")
        manifest.emit("run_start", run_id="shared")
        script = (
            "from repro.obs.manifest import RunManifest\n"
            "import sys\n"
            "m = RunManifest(run_id='shared')\n"
            "for i in range(50):\n"
            "    m.emit('tick', writer=sys.argv[1], i=i,\n"
            "           pad='x' * 200)\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, f"p{k}"],
                env=os.environ.copy(),
            )
            for k in range(4)
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        events, torn = obs.read_manifest(manifest.path)
        assert torn == 0
        ticks = [e for e in events if e["event"] == "tick"]
        assert len(ticks) == 200
        # every writer's every event landed intact, in order per writer
        for k in range(4):
            own = [e["i"] for e in ticks if e["writer"] == f"p{k}"]
            assert own == list(range(50))


class TestManifestFamilies:
    def _family(self):
        coordinator = RunManifest(run_id="fam1")
        coordinator.start(("li",), {})
        w0 = RunManifest(run_id="fam1", worker="w0")
        w0.emit("shard_claim", name="li")
        w1 = RunManifest(run_id="fam1", worker="w1")
        w1.emit("shard_steal", name="li", attempt=2)
        w1.emit("shard_done", name="li")
        coordinator.end(ok=["li"], failed=[], resumed=[], seconds=0.1)
        return coordinator, w0, w1

    def test_group_key_strips_worker_tag(self, cache_dir):
        coordinator, w0, _ = self._family()
        assert obs.manifest.group_key(coordinator.path) == "fam1"
        assert obs.manifest.group_key(w0.path) == "fam1"

    def test_list_run_groups_coordinator_first(self, cache_dir):
        self._family()
        RunManifest(run_id="solo").emit("run_start")
        groups = dict(obs.list_run_groups())
        assert set(groups) == {"fam1", "solo"}
        fam = groups["fam1"]
        assert len(fam) == 3
        assert fam[0].name == "run-fam1.jsonl"
        assert [p.name for p in fam[1:]] == [
            "run-fam1-ww0.jsonl", "run-fam1-ww1.jsonl",
        ]

    def test_find_run_paths_resolves_family(self, cache_dir):
        self._family()
        paths = obs.find_run_paths("fam1")
        assert len(paths) == 3
        assert obs.find_run_paths("latest") == paths

    def test_merge_events_time_ordered_and_tagged(self, cache_dir):
        self._family()
        events, torn = obs.merge_events(obs.find_run_paths("fam1"))
        assert torn == 0
        assert events[0]["event"] == "run_start"
        assert events[-1]["event"] == "run_end"
        times = [e["t"] for e in events]
        assert times == sorted(times)
        workers = {e.get("worker") for e in events}
        assert {"w0", "w1"} <= workers

    def test_summarize_merged_family(self, cache_dir):
        self._family()
        events, _ = obs.merge_events(obs.find_run_paths("fam1"))
        summary = obs.summarize(events)
        assert summary["run_id"] == "fam1"
        assert summary["workers"] == ["w0", "w1"]
        assert summary["steals"] == 1
        assert summary["complete"] is True


class TestSummarize:
    def _events(self):
        return [
            {"event": "run_start", "run_id": "r1",
             "workloads": ["li", "gcc", "swim"]},
            {"event": "profile_start", "name": "li", "attempt": 1},
            {"event": "profile_done", "name": "li", "attempt": 1,
             "seconds": 0.4, "source": "computed",
             "telemetry": {"counters": {"trace_cache.miss": 1},
                           "timers": {"stage.trace":
                                      {"seconds": 0.3, "calls": 1}}}},
            {"event": "profile_start", "name": "gcc", "attempt": 1},
            {"event": "profile_error", "name": "gcc", "attempt": 1,
             "kind": "RuntimeError", "message": "boom", "will_retry": True},
            {"event": "retry", "name": "gcc", "attempt": 2, "backoff": 0.05},
            {"event": "profile_start", "name": "gcc", "attempt": 2},
            {"event": "profile_error", "name": "gcc", "attempt": 2,
             "kind": "RuntimeError", "message": "boom", "will_retry": False},
            {"event": "worker_crash", "in_flight": ["swim"]},
            {"event": "run_end", "ok": ["li"], "failed": ["gcc"],
             "resumed": [], "seconds": 1.5},
        ]

    def test_statuses(self):
        summary = obs.summarize(self._events())
        kernels = summary["kernels"]
        assert kernels["li"]["status"] == "ok"
        assert kernels["li"]["source"] == "computed"
        assert kernels["gcc"]["status"] == "failed"
        assert kernels["gcc"]["attempts"] == 2
        assert kernels["gcc"]["errors"] == ["RuntimeError: boom"] * 2
        assert kernels["swim"]["status"] == "missing"

    def test_totals_and_flags(self):
        summary = obs.summarize(self._events())
        assert summary["run_id"] == "r1"
        assert summary["complete"] is True
        assert summary["worker_crashes"] == 1
        assert summary["seconds"] == 1.5
        assert summary["counters"] == {"trace_cache.miss": 1}
        assert summary["timers"]["stage.trace"]["calls"] == 1

    def test_incomplete_run(self):
        summary = obs.summarize(self._events()[:3])
        assert summary["complete"] is False
        assert summary["seconds"] is None

    def test_error_then_success_is_ok(self):
        events = [
            {"event": "profile_error", "name": "li", "attempt": 1,
             "kind": "RuntimeError", "message": "flaky"},
            {"event": "profile_done", "name": "li", "attempt": 2,
             "seconds": 0.1},
        ]
        entry = obs.summarize(events)["kernels"]["li"]
        assert entry["status"] == "ok"
        assert entry["attempts"] == 2


class TestObsCli:
    def test_list_empty(self, cache_dir, capsys):
        from repro.cli import main

        assert main(["obs", "list"]) == 0
        assert "no run manifests" in capsys.readouterr().out

    def test_show_missing(self, cache_dir, capsys):
        from repro.cli import main

        assert main(["obs", "show"]) == 1
        assert "no run manifests" in capsys.readouterr().err

    def test_list_and_show(self, cache_dir, capsys):
        from repro.cli import main

        manifest = RunManifest()
        manifest.start(("li",), {"budget": 100})
        manifest.emit("profile_done", name="li", attempt=1, seconds=0.25,
                      source="computed", telemetry={"counters": {"c": 2}})
        manifest.end(ok=["li"], failed=[], resumed=[], seconds=0.3)

        assert main(["obs", "list"]) == 0
        out = capsys.readouterr().out
        assert manifest.run_id in out and "yes" in out

        assert main(["obs", "show", "latest"]) == 0
        out = capsys.readouterr().out
        assert "li" in out and "computed" in out and str(manifest.path) in out

    def test_show_failed_kernels_listed(self, cache_dir, capsys):
        from repro.cli import main

        manifest = RunManifest()
        manifest.start(("li", "gcc"), {})
        manifest.emit("profile_error", name="gcc", attempt=1,
                      kind="RuntimeError", message="boom", will_retry=False)
        manifest.end(ok=["li"], failed=["gcc"], resumed=[], seconds=0.1)
        assert main(["obs", "show"]) == 0
        out = capsys.readouterr().out
        assert "failed kernels: gcc" in out


class TestEngineProfilingHooks:
    def test_records_collected_when_enabled(self, monkeypatch,
                                            tiny_loop_trace):
        from repro.baselines.ilr import instruction_reusability
        from repro.core.traces import maximal_reusable_spans
        from repro.dataflow.model import FusedDataflowEngine, Scenario

        monkeypatch.setenv("REPRO_PROFILE", "1")
        reuse = instruction_reusability(tiny_loop_trace)
        spans = maximal_reusable_spans(tiny_loop_trace, reuse.flags)
        engine = FusedDataflowEngine(
            tiny_loop_trace, flags=reuse.flags, spans=spans
        )
        engine.analyze(Scenario("base", window_size=None))
        engine.analyze(Scenario("tlr", window_size=256, latency=1.0))
        assert engine.profile_records is not None
        assert len(engine.profile_records) == 2
        record = engine.profile_records[0]
        assert record["kind"] == "base"
        assert record["instructions"] == len(tiny_loop_trace)
        assert record["seconds"] >= 0.0
        assert record["instructions_per_second"] > 0
        assert json.dumps(engine.profile_records)  # JSON-able

    def test_disabled_by_default(self, monkeypatch, tiny_loop_trace):
        from repro.baselines.ilr import instruction_reusability
        from repro.core.traces import maximal_reusable_spans
        from repro.dataflow.model import FusedDataflowEngine, Scenario

        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        reuse = instruction_reusability(tiny_loop_trace)
        spans = maximal_reusable_spans(tiny_loop_trace, reuse.flags)
        engine = FusedDataflowEngine(
            tiny_loop_trace, flags=reuse.flags, spans=spans
        )
        engine.analyze(Scenario("base", window_size=None))
        assert engine.profile_records is None

    def test_analysis_timers_reported(self, monkeypatch, tiny_loop_trace):
        from repro.baselines.ilr import instruction_reusability
        from repro.core.traces import maximal_reusable_spans
        from repro.dataflow.model import FusedDataflowEngine, Scenario

        monkeypatch.setenv("REPRO_PROFILE", "1")
        reuse = instruction_reusability(tiny_loop_trace)
        spans = maximal_reusable_spans(tiny_loop_trace, reuse.flags)
        with obs.scope() as registry:
            engine = FusedDataflowEngine(
                tiny_loop_trace, flags=reuse.flags, spans=spans
            )
            engine.analyze(Scenario("base", window_size=None))
            snap = registry.snapshot()
        assert snap["timers"]["engine.base"]["calls"] == 1
        assert snap["counters"]["engine.instructions_analyzed"] == len(
            tiny_loop_trace
        )
