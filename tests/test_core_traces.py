"""Trace model: liveness, spans, limits."""

import pytest

from repro.core.traces import (
    TraceLimits,
    UNLIMITED,
    average_span_length,
    compute_liveness,
    maximal_reusable_spans,
    span_from_range,
    spans_from_ranges,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import loc_mem
from repro.vm.trace import DynInst


def make_inst(pc, reads, writes, op=Opcode.ADD):
    return DynInst(pc, op, tuple(reads), tuple(writes), 1, pc + 1)


class TestLiveness:
    def test_read_before_write_is_live_in(self):
        stream = [make_inst(0, [(1, 5)], [(2, 6)])]
        live_ins, live_outs = compute_liveness(stream)
        assert live_ins == ((1, 5),)
        assert live_outs == ((2, 6),)

    def test_read_after_write_not_live_in(self):
        stream = [
            make_inst(0, [], [(1, 9)]),
            make_inst(1, [(1, 9)], [(2, 0)]),
        ]
        live_ins, live_outs = compute_liveness(stream)
        assert live_ins == ()
        assert dict(live_outs) == {1: 9, 2: 0}

    def test_live_out_keeps_final_value(self):
        stream = [
            make_inst(0, [], [(1, 1)]),
            make_inst(1, [], [(1, 2)]),
        ]
        _, live_outs = compute_liveness(stream)
        assert live_outs == ((1, 2),)

    def test_live_in_keeps_first_value(self):
        # a location read, then written, then read again: its live-in
        # value is the first read
        stream = [
            make_inst(0, [(1, 5)], [(1, 6)]),
            make_inst(1, [(1, 6)], [(2, 0)]),
        ]
        live_ins, _ = compute_liveness(stream)
        assert live_ins == ((1, 5),)

    def test_order_preserved(self):
        stream = [make_inst(0, [(3, 0), (1, 0)], [(9, 0), (7, 0)])]
        live_ins, live_outs = compute_liveness(stream)
        assert [loc for loc, _ in live_ins] == [3, 1]
        assert [loc for loc, _ in live_outs] == [9, 7]

    def test_memory_and_registers_mix(self):
        mem = loc_mem(0x100)
        stream = [make_inst(0, [(1, 2), (mem, 3)], [(mem, 4)])]
        live_ins, live_outs = compute_liveness(stream)
        assert (mem, 3) in live_ins
        assert live_outs == ((mem, 4),)

    def test_empty(self):
        assert compute_liveness([]) == ((), ())


class TestSpans:
    def test_span_basic_fields(self):
        stream = [make_inst(i, [(1, i)], [(1, i + 1)]) for i in range(4)]
        span = span_from_range(stream, 1, 3)
        assert span.length == 2
        assert span.start_pc == 1
        assert span.next_pc == 3
        assert span.live_ins == ((1, 1),)

    def test_span_counts(self):
        mem = loc_mem(4)
        stream = [make_inst(0, [(1, 0), (mem, 2)], [(2, 1), (mem, 3)])]
        span = span_from_range(stream, 0, 1)
        assert span.reg_input_count == 1
        assert span.mem_input_count == 1
        assert span.reg_output_count == 1
        assert span.mem_output_count == 1
        assert span.input_count == 2 and span.output_count == 2

    def test_bad_range_raises(self):
        stream = [make_inst(0, [], [])]
        with pytest.raises(ValueError):
            span_from_range(stream, 0, 0)
        with pytest.raises(ValueError):
            span_from_range(stream, 0, 5)

    def test_spans_from_ranges(self):
        stream = [make_inst(i, [], [(1, i)]) for i in range(6)]
        spans = spans_from_ranges(stream, [(0, 2), (4, 6)])
        assert [s.start for s in spans] == [0, 4]

    def test_maximal_spans_partition_runs(self):
        stream = [make_inst(i, [(1, 0)], [(1, 1)]) for i in range(7)]
        flags = [False, True, True, False, True, False, True]
        spans = maximal_reusable_spans(stream, flags)
        assert [(s.start, s.stop) for s in spans] == [(1, 3), (4, 5), (6, 7)]

    def test_maximal_spans_cover_exactly_reusable(self):
        stream = [make_inst(i, [(1, 0)], [(1, 1)]) for i in range(10)]
        flags = [i % 3 != 0 for i in range(10)]
        spans = maximal_reusable_spans(stream, flags)
        covered = set()
        for s in spans:
            covered.update(range(s.start, s.stop))
        assert covered == {i for i, f in enumerate(flags) if f}

    def test_all_reusable_single_span(self):
        stream = [make_inst(i, [], [(1, i)]) for i in range(5)]
        spans = maximal_reusable_spans(stream, [True] * 5)
        assert len(spans) == 1 and spans[0].length == 5

    def test_none_reusable_no_spans(self):
        stream = [make_inst(i, [], []) for i in range(5)]
        assert maximal_reusable_spans(stream, [False] * 5) == []

    def test_flags_length_checked(self):
        with pytest.raises(ValueError):
            maximal_reusable_spans([make_inst(0, [], [])], [True, False])

    def test_average_span_length(self):
        stream = [make_inst(i, [], [(1, i)]) for i in range(6)]
        spans = maximal_reusable_spans(stream, [True, True, False, True, True, True])
        assert average_span_length(spans) == pytest.approx(2.5)
        assert average_span_length([]) == 0.0


class TestLimits:
    def test_default_limits_match_paper(self):
        limits = TraceLimits()
        assert limits.max_reg_inputs == 8
        assert limits.max_mem_inputs == 4
        assert limits.max_reg_outputs == 8
        assert limits.max_mem_outputs == 4

    def test_admits(self):
        limits = TraceLimits()
        assert limits.admits(8, 4, 8, 4)
        assert not limits.admits(9, 4, 8, 4)
        assert not limits.admits(8, 5, 8, 4)
        assert not limits.admits(8, 4, 9, 4)
        assert not limits.admits(8, 4, 8, 5)

    def test_unlimited(self):
        assert UNLIMITED.admits(10**6, 10**6, 10**6, 10**6)

    def test_span_within(self):
        stream = [make_inst(0, [(i, 0) for i in range(1, 10)], [])]
        span = span_from_range(stream, 0, 1)
        assert span.reg_input_count == 9
        assert not span.within(TraceLimits())
        assert span.within(UNLIMITED)
