"""Disassembler: coverage of every opcode and assemble round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.disasm import disassemble, disassemble_instruction
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.vm.assembler import assemble


class TestInstructionText:
    def test_r3(self):
        text = disassemble_instruction(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
        assert text == "add r1, r2, r3"

    def test_load_store(self):
        assert disassemble_instruction(
            Instruction(Opcode.LW, rd=1, rs1=2, imm=-4)
        ) == "lw r1, -4(r2)"
        assert disassemble_instruction(
            Instruction(Opcode.SW, rs2=5, rs1=6, imm=0)
        ) == "sw r5, 0(r6)"

    def test_fp_forms(self):
        assert disassemble_instruction(
            Instruction(Opcode.FLI, rd=3, imm=1.5)
        ) == "fli f3, 1.5"
        assert disassemble_instruction(
            Instruction(Opcode.FSQRT, rd=1, rs1=2)
        ) == "fsqrt f1, f2"

    def test_every_opcode_disassembles(self):
        for op in Opcode:
            text = disassemble_instruction(Instruction(op, rd=1, rs1=2, rs2=3, imm=0))
            assert isinstance(text, str) and text

    def test_with_pcs(self):
        out = disassemble([Instruction(Opcode.NOP)], with_pcs=True)
        assert out.strip().startswith("0:")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "add r1, r2, r3\nhalt",
            "li r1, -42\nmuli r2, r1, 3\nhalt",
            "lw r1, 4(r2)\nsw r1, -1(r3)\nhalt",
            "top: addi r1, r1, 1\nblt r1, r2, top\nhalt",
            "fli f1, 2.5\nfadd f2, f1, f1\nfsw f2, 0(r1)\nhalt",
            "jal r31, 2\nhalt\njr r31",
            "cvtif f1, r2\ncvtfi r3, f1\nfle r4, f1, f1\nhalt",
        ],
    )
    def test_text_round_trip(self, source):
        program = assemble(source)
        text = disassemble(program)
        reassembled = assemble(text)
        assert reassembled.instructions == program.instructions

    @given(st.lists(st.sampled_from(list(Opcode)), min_size=1, max_size=20),
           st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_random_round_trip(self, ops, rnd):
        imm_ops = {
            Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI,
            Opcode.SRLI, Opcode.SRAI, Opcode.SLTI, Opcode.MULI, Opcode.LI,
            Opcode.LW, Opcode.SW, Opcode.FLW, Opcode.FSW,
        }
        instructions = []
        for pc, op in enumerate(ops):
            if op in (Opcode.J, Opcode.JAL) or op in (
                Opcode.BEQ, Opcode.BNE, Opcode.BLT,
                Opcode.BGE, Opcode.BLE, Opcode.BGT,
            ):
                imm = rnd.randrange(0, len(ops))  # valid target
            elif op is Opcode.FLI:
                imm = float(rnd.randrange(-8, 8)) / 2
            elif op in imm_ops:
                imm = rnd.randrange(-64, 64)
            else:
                imm = 0  # the textual form does not carry an immediate
            instructions.append(
                Instruction(
                    op,
                    rd=rnd.randrange(0, 32),
                    rs1=rnd.randrange(0, 32),
                    rs2=rnd.randrange(0, 32),
                    imm=imm,
                )
            )
        text = disassemble(instructions)
        reassembled = assemble(text)
        assert len(reassembled.instructions) == len(instructions)
        for got, want in zip(reassembled.instructions, instructions):
            assert got.op is want.op
            assert got.imm == want.imm

    def test_workload_round_trips(self):
        from repro.workloads.base import build_program

        program = build_program("li")
        reassembled = assemble(disassemble(program))
        assert reassembled.instructions == program.instructions
