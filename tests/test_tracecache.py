"""The persistent trace/profile cache: round-trips, keys, knobs."""

from __future__ import annotations

import pytest

from repro.exp.config import ExperimentConfig
from repro.exp.runner import run_profile
from repro.vm import tracecache
from repro.workloads.base import run_workload


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """A fresh, empty cache directory for one test."""
    target = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
    return target


def traces_equal(a, b) -> bool:
    return (
        len(a) == len(b)
        and a.program_name == b.program_name
        and a.halted == b.halted
        and a.truncated == b.truncated
        and [repr(d) for d in a] == [repr(d) for d in b]
    )


class TestTraceLayer:
    def test_hit_equals_recompute(self, cache_dir):
        cold = run_workload("li", max_instructions=500)
        assert tracecache.cache_info()["traces"] == 1
        warm = run_workload("li", max_instructions=500)
        assert traces_equal(cold, warm)
        # still one entry: the warm run must not have re-stored
        assert tracecache.cache_info()["traces"] == 1

    def test_budget_is_part_of_the_key(self, cache_dir):
        run_workload("li", max_instructions=300)
        run_workload("li", max_instructions=400)
        assert tracecache.cache_info()["traces"] == 2

    def test_use_cache_false_bypasses(self, cache_dir):
        run_workload("li", max_instructions=300, use_cache=False)
        assert not cache_dir.exists()

    def test_kill_switch(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        run_workload("li", max_instructions=300)
        assert not cache_dir.exists()

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        cold = run_workload("li", max_instructions=300)
        (entry,) = (cache_dir / "traces").iterdir()
        entry.write_bytes(b"garbage")
        recomputed = run_workload("li", max_instructions=300)
        assert traces_equal(cold, recomputed)

    def test_no_tmp_files_left_behind(self, cache_dir):
        run_workload("li", max_instructions=300)
        leftovers = [
            p for p in (cache_dir / "traces").iterdir()
            if p.name.endswith(".tmp")
        ]
        assert not leftovers


class TestProfileLayer:
    def test_hit_equals_recompute(self, cache_dir):
        config = ExperimentConfig(max_instructions=1_500)
        cold = run_profile("compress", config)
        assert tracecache.cache_info()["profiles"] == 1
        warm = run_profile("compress", config)
        assert warm == cold  # dataclass equality over every field

    def test_warm_profile_equals_uncached_run(self, cache_dir):
        cached = ExperimentConfig(max_instructions=1_500)
        run_profile("compress", cached)  # populate
        warm = run_profile("compress", cached)
        fresh = run_profile(
            "compress", ExperimentConfig(max_instructions=1_500, use_cache=False)
        )
        assert warm == fresh

    def test_config_key_sensitivity(self, cache_dir):
        run_profile("li", ExperimentConfig(max_instructions=1_000))
        run_profile(
            "li", ExperimentConfig(max_instructions=1_000, window_size=128)
        )
        assert tracecache.cache_info()["profiles"] == 2

    @pytest.mark.parametrize(
        "mutation",
        [
            {"window_size": 128},
            {"scale": 2},
            {"reuse_latencies": (1, 2)},
            {"proportional_ks": (0.5,)},
        ],
    )
    def test_any_semantic_field_changes_the_key(self, cache_dir, mutation):
        """Mutating any analysis-relevant config field must be a miss."""
        base = ExperimentConfig(max_instructions=1_000)
        mutated = ExperimentConfig(max_instructions=1_000, **mutation)
        assert tracecache.profile_path(
            "li", base.cache_key()
        ) != tracecache.profile_path("li", mutated.cache_key())

    def test_execution_knobs_do_not_change_the_key(self, cache_dir):
        """Worker counts / retry policy must share one cache entry."""
        base = ExperimentConfig(max_instructions=1_000)
        tuned = ExperimentConfig(
            max_instructions=1_000, max_workers=7, task_timeout=9.0,
            task_retries=5, retry_backoff=1.0, workloads=("li",),
        )
        assert tracecache.profile_path(
            "li", base.cache_key()
        ) == tracecache.profile_path("li", tuned.cache_key())

    def test_future_semantic_fields_enter_the_key(self):
        """cache_key is derived from the dataclass fields, so every
        field not explicitly excluded participates."""
        from repro.exp.config import _NON_SEMANTIC_FIELDS
        import dataclasses

        config = ExperimentConfig()
        named = {name for name, _ in config.cache_key()}
        all_fields = {f.name for f in dataclasses.fields(ExperimentConfig)}
        assert named == all_fields - _NON_SEMANTIC_FIELDS

    def test_corrupt_profile_entry_recovers(self, cache_dir):
        """Garbled entry => miss, recompute, atomic rewrite."""
        config = ExperimentConfig(max_instructions=1_000)
        cold = run_profile("li", config)
        path = tracecache.profile_path("li", config.cache_key())
        path.write_bytes(b"\x80\x04garbage")
        recovered = run_profile("li", config)
        assert recovered == cold
        # the recompute rewrote the entry: it loads cleanly again
        assert tracecache.load_cached_profile(
            "li", config.cache_key()
        ) == cold
        leftovers = [p for p in path.parent.iterdir()
                     if p.name.endswith(".tmp")]
        assert not leftovers

    def test_truncated_profile_entry_recovers(self, cache_dir):
        config = ExperimentConfig(max_instructions=1_000)
        cold = run_profile("li", config)
        path = tracecache.profile_path("li", config.cache_key())
        path.write_bytes(path.read_bytes()[:10])
        assert run_profile("li", config) == cold


class TestMaintenance:
    def test_info_and_clear(self, cache_dir):
        run_workload("li", max_instructions=300)
        run_profile("li", ExperimentConfig(max_instructions=300))
        info = tracecache.cache_info()
        assert info["traces"] == 1 and info["profiles"] == 1
        assert info["trace_bytes"] > 0 and info["profile_bytes"] > 0
        assert tracecache.clear_cache() == 2
        info = tracecache.cache_info()
        assert info["traces"] == 0 and info["profiles"] == 0

    def test_clear_empty_cache(self, cache_dir):
        assert tracecache.clear_cache() == 0

    def test_cache_dir_env_override(self, cache_dir):
        assert tracecache.cache_dir() == cache_dir

    def test_clear_keeps_run_manifests(self, cache_dir):
        from repro.obs.manifest import RunManifest

        run_workload("li", max_instructions=300)
        manifest = RunManifest()
        manifest.emit("run_start")
        assert tracecache.clear_cache() == 1
        assert manifest.path.is_file()
        info = tracecache.cache_info()
        assert info["runs"] == 1 and info["run_bytes"] > 0
