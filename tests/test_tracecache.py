"""The persistent trace/profile cache: round-trips, keys, knobs."""

from __future__ import annotations

import pytest

from repro.exp.config import ExperimentConfig
from repro.exp.runner import run_profile
from repro.vm import tracecache
from repro.workloads.base import run_workload


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """A fresh, empty cache directory for one test."""
    target = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
    return target


def traces_equal(a, b) -> bool:
    return (
        len(a) == len(b)
        and a.program_name == b.program_name
        and a.halted == b.halted
        and a.truncated == b.truncated
        and [repr(d) for d in a] == [repr(d) for d in b]
    )


class TestTraceLayer:
    def test_hit_equals_recompute(self, cache_dir):
        cold = run_workload("li", max_instructions=500)
        assert tracecache.cache_info()["traces"] == 1
        warm = run_workload("li", max_instructions=500)
        assert traces_equal(cold, warm)
        # still one entry: the warm run must not have re-stored
        assert tracecache.cache_info()["traces"] == 1

    def test_budget_is_part_of_the_key(self, cache_dir):
        run_workload("li", max_instructions=300)
        run_workload("li", max_instructions=400)
        assert tracecache.cache_info()["traces"] == 2

    def test_use_cache_false_bypasses(self, cache_dir):
        run_workload("li", max_instructions=300, use_cache=False)
        assert not cache_dir.exists()

    def test_kill_switch(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        run_workload("li", max_instructions=300)
        assert not cache_dir.exists()

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        cold = run_workload("li", max_instructions=300)
        (entry,) = (cache_dir / "traces").iterdir()
        entry.write_bytes(b"garbage")
        recomputed = run_workload("li", max_instructions=300)
        assert traces_equal(cold, recomputed)

    def test_no_tmp_files_left_behind(self, cache_dir):
        run_workload("li", max_instructions=300)
        leftovers = [
            p for p in (cache_dir / "traces").iterdir()
            if p.name.endswith(".tmp")
        ]
        assert not leftovers


class TestProfileLayer:
    def test_hit_equals_recompute(self, cache_dir):
        config = ExperimentConfig(max_instructions=1_500)
        cold = run_profile("compress", config)
        assert tracecache.cache_info()["profiles"] == 1
        warm = run_profile("compress", config)
        assert warm == cold  # dataclass equality over every field

    def test_warm_profile_equals_uncached_run(self, cache_dir):
        cached = ExperimentConfig(max_instructions=1_500)
        run_profile("compress", cached)  # populate
        warm = run_profile("compress", cached)
        fresh = run_profile(
            "compress", ExperimentConfig(max_instructions=1_500, use_cache=False)
        )
        assert warm == fresh

    def test_config_key_sensitivity(self, cache_dir):
        run_profile("li", ExperimentConfig(max_instructions=1_000))
        run_profile(
            "li", ExperimentConfig(max_instructions=1_000, window_size=128)
        )
        assert tracecache.cache_info()["profiles"] == 2


class TestMaintenance:
    def test_info_and_clear(self, cache_dir):
        run_workload("li", max_instructions=300)
        run_profile("li", ExperimentConfig(max_instructions=300))
        info = tracecache.cache_info()
        assert info["traces"] == 1 and info["profiles"] == 1
        assert info["trace_bytes"] > 0 and info["profile_bytes"] > 0
        assert tracecache.clear_cache() == 2
        info = tracecache.cache_info()
        assert info["traces"] == 0 and info["profiles"] == 0

    def test_clear_empty_cache(self, cache_dir):
        assert tracecache.clear_cache() == 0

    def test_cache_dir_env_override(self, cache_dir):
        assert tracecache.cache_dir() == cache_dir
