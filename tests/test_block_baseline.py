"""Basic-block reuse baseline (Huang & Lilja ablation)."""

import pytest

from repro.baselines.block import basic_block_spans
from repro.baselines.ilr import instruction_reusability
from repro.core.traces import maximal_reusable_spans
from repro.isa.opcodes import Opcode
from repro.vm.trace import DynInst


def make_inst(pc, op=Opcode.ADD, next_pc=None, reads=((1, 0),)):
    return DynInst(pc, op, tuple(reads), (), 1, pc + 1 if next_pc is None else next_pc)


class TestBasicBlockSpans:
    def test_flags_length_checked(self):
        with pytest.raises(ValueError):
            basic_block_spans([make_inst(0)], [True, True])

    def test_branch_ends_block(self):
        stream = [
            make_inst(0),
            make_inst(1, op=Opcode.BNE),
            make_inst(2),
            make_inst(3),
        ]
        spans = basic_block_spans(stream, [True] * 4)
        assert (0, 2) in spans
        assert (2, 4) in spans

    def test_jump_ends_block(self):
        stream = [make_inst(0), make_inst(1, op=Opcode.J, next_pc=5), make_inst(5)]
        spans = basic_block_spans(stream, [True] * 3)
        assert spans[0] == (0, 2)

    def test_non_reusable_ends_span(self):
        stream = [make_inst(i) for i in range(4)]
        spans = basic_block_spans(stream, [True, False, True, True])
        assert spans == [(0, 1), (2, 4)]

    def test_discontinuous_next_pc_ends_block(self):
        stream = [make_inst(0, next_pc=7), make_inst(7)]
        spans = basic_block_spans(stream, [True, True])
        assert spans == [(0, 1), (1, 2)]

    def test_open_tail_closed(self):
        stream = [make_inst(0), make_inst(1)]
        assert basic_block_spans(stream, [True, True]) == [(0, 2)]

    def test_no_reusable_instructions(self):
        stream = [make_inst(0), make_inst(1)]
        assert basic_block_spans(stream, [False, False]) == []

    def test_blocks_refine_maximal_traces(self, repetitive_trace):
        """Every basic-block span nests inside some maximal trace span,
        so block reuse covers at most what trace reuse covers."""
        flags = instruction_reusability(repetitive_trace).flags
        trace_spans = [
            (s.start, s.stop) for s in maximal_reusable_spans(repetitive_trace, flags)
        ]
        block_spans = basic_block_spans(repetitive_trace, flags)
        covered_by_traces = set()
        for start, stop in trace_spans:
            covered_by_traces.update(range(start, stop))
        block_covered = set()
        for start, stop in block_spans:
            block_covered.update(range(start, stop))
        assert block_covered <= covered_by_traces

    def test_block_spans_never_cross_control_transfers(self, repetitive_trace):
        from repro.isa.opcodes import OpClass

        flags = instruction_reusability(repetitive_trace).flags
        for start, stop in basic_block_spans(repetitive_trace, flags):
            for i in range(start, stop - 1):
                inst = repetitive_trace[i]
                assert inst.op_class not in (OpClass.BRANCH, OpClass.JUMP)
                assert inst.next_pc == inst.pc + 1
