"""The shared analysis driver: pass registry, memoisation, units."""

from __future__ import annotations

import pytest

from repro.static.driver import (
    AnalysisDriver,
    AnalysisUnit,
    analysis_pass,
    registered_passes,
)
from repro.workloads.generators import rl_loop_nest


class TestRegistry:
    def test_core_passes_registered(self):
        names = registered_passes()
        for expected in ("cfg", "frequencies", "census", "variants",
                         "cardinality", "langinfo"):
            assert expected in names

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            analysis_pass("cfg")(lambda unit, facts: None)

    def test_unknown_pass_lists_known(self):
        driver = AnalysisDriver()
        unit = AnalysisUnit.from_workload("li")
        with pytest.raises(KeyError, match="registered"):
            driver.get(unit, "no-such-pass")


class TestMemoisation:
    def test_facts_computed_once_per_unit(self):
        driver = AnalysisDriver()
        unit = AnalysisUnit.from_workload("li", budget=4_000)
        first = driver.get(unit, "cfg")
        second = driver.get(unit, "cfg")
        assert first is second

    def test_dependencies_resolve_transitively(self):
        driver = AnalysisDriver()
        unit = AnalysisUnit.from_workload("compress", budget=4_000)
        census = driver.get(unit, "census")  # needs cfg + frequencies
        assert census
        facts = driver.facts_for(unit)
        assert "cfg" in facts and "frequencies" in facts

    def test_distinct_units_do_not_share_facts(self):
        driver = AnalysisDriver()
        a = AnalysisUnit.from_workload("li", budget=4_000)
        b = AnalysisUnit.from_workload("li", budget=4_000)
        assert driver.get(a, "cfg") is not driver.get(b, "cfg")


class TestUnits:
    def test_rl_unit_carries_module_and_program(self):
        unit = AnalysisUnit.from_rl_source(
            rl_loop_nest(depth=1, trips=4), name="nest"
        )
        assert unit.module is not None
        assert unit.program is not None
        assert unit.name == "nest"

    def test_langinfo_none_for_assembly_units(self):
        driver = AnalysisDriver()
        unit = AnalysisUnit.from_workload("li")
        assert driver.get(unit, "langinfo") is None

    def test_langinfo_present_for_rl_units(self):
        driver = AnalysisDriver()
        unit = AnalysisUnit.from_rl_source(rl_loop_nest(depth=1, trips=4))
        assert driver.get(unit, "langinfo") is not None
