"""Cross-process filesystem primitives (``repro.util.fslock``)."""

from __future__ import annotations

import os
import subprocess
import sys
import time

import pytest

from repro.util import fslock


class TestFileLock:
    def test_reentrant_use_releases(self, tmp_path):
        lock = tmp_path / "a.lock"
        with fslock.file_lock(lock):
            pass
        # a released lock can be re-acquired immediately
        with fslock.file_lock(lock):
            pass
        assert lock.is_file()

    def test_creates_parent_directories(self, tmp_path):
        lock = tmp_path / "deep" / "nested" / "x.lock"
        with fslock.file_lock(lock):
            assert lock.is_file()

    def test_excludes_other_processes(self, tmp_path):
        """A child process must block on the lock until we release it."""
        lock = tmp_path / "x.lock"
        stamp = tmp_path / "stamp"
        script = (
            "import sys, time\n"
            "from repro.util import fslock\n"
            f"with fslock.file_lock({str(lock)!r}):\n"
            f"    open({str(stamp)!r}, 'w').write(str(time.time()))\n"
        )
        with fslock.file_lock(lock):
            child = subprocess.Popen([sys.executable, "-c", script])
            time.sleep(0.5)
            # the child is alive but has not reached the critical section
            assert child.poll() is None
            assert not stamp.exists()
        assert child.wait(timeout=10) == 0
        assert stamp.exists()

    def test_shared_locks_do_not_exclude_each_other(self, tmp_path):
        lock = tmp_path / "s.lock"
        with fslock.file_lock(lock, shared=True):
            script = (
                "from repro.util import fslock\n"
                f"with fslock.file_lock({str(lock)!r}, shared=True):\n"
                "    pass\n"
            )
            done = subprocess.run([sys.executable, "-c", script], timeout=10)
            assert done.returncode == 0


class TestPidAlive:
    def test_own_pid(self):
        assert fslock.pid_alive(os.getpid())

    def test_dead_pid(self):
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        assert not fslock.pid_alive(child.pid)

    def test_nonsense_pids(self):
        assert not fslock.pid_alive(0)
        assert not fslock.pid_alive(-5)


class TestTmpFiles:
    def test_make_tmp_embeds_pid(self, tmp_path):
        tmp = fslock.make_tmp(tmp_path, "entry.bin")
        assert tmp.name.endswith(".tmp")
        assert fslock.tmp_pid(tmp) == os.getpid()

    def test_tmp_pid_absent(self, tmp_path):
        assert fslock.tmp_pid(tmp_path / "plain.tmp") is None

    def test_reap_removes_dead_pid_tmp(self, tmp_path):
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        orphan = tmp_path / f"entry.pid{child.pid}.abc.tmp"
        orphan.write_bytes(b"partial")
        assert fslock.reap_stale_tmps(tmp_path) == 1
        assert not orphan.exists()

    def test_reap_keeps_live_pid_tmp(self, tmp_path):
        mine = fslock.make_tmp(tmp_path, "entry.bin")
        # even an "old" file survives while its creator is alive
        os.utime(mine, (time.time() - 10_000, time.time() - 10_000))
        assert fslock.reap_stale_tmps(tmp_path) == 0
        assert mine.exists()

    def test_reap_untagged_by_age(self, tmp_path):
        legacy = tmp_path / "entry.bin.xyz.tmp"
        legacy.write_bytes(b"old")
        assert fslock.reap_stale_tmps(tmp_path, max_age=3600) == 0
        os.utime(legacy, (time.time() - 7200, time.time() - 7200))
        assert fslock.reap_stale_tmps(tmp_path, max_age=3600) == 1
        assert not legacy.exists()

    def test_reap_ignores_non_tmp_files(self, tmp_path):
        keeper = tmp_path / "entry.trace"
        keeper.write_bytes(b"data")
        os.utime(keeper, (0, 0))
        assert fslock.reap_stale_tmps(tmp_path, max_age=1) == 0
        assert keeper.exists()

    def test_reap_missing_directory(self, tmp_path):
        assert fslock.reap_stale_tmps(tmp_path / "absent") == 0
