"""Fault tolerance of the ``collect_profiles`` sweep.

Faults are injected with ``REPRO_FAULT_INJECT`` (see
:mod:`repro.exp.runner`): ``raise`` makes a kernel raise, ``crash``
kills the worker process mid-task, ``sleep<secs>`` stalls it past the
per-task timeout.  The sweep must degrade — record the failure, keep
the other kernels, write a complete manifest — and a re-invocation
must resume from the cache bit-identically to an uninterrupted run.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.exp.config import ExperimentConfig
from repro.exp.runner import FAULT_ENV, collect_profiles, run_profile

WORKLOADS = ("li", "compress", "tomcatv")
BUDGET = 800


def tiny_config(**kwargs) -> ExperimentConfig:
    defaults = dict(
        max_instructions=BUDGET,
        workloads=WORKLOADS,
        max_workers=1,
        task_retries=1,
        retry_backoff=0.0,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    target = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
    return target


class TestHappyPath:
    def test_profiles_in_config_order(self, cache_dir):
        run = collect_profiles(tiny_config())
        assert [p.name for p in run] == list(WORKLOADS)
        assert run.ok and not run.failures and not run.resumed

    def test_manifest_written_and_complete(self, cache_dir):
        run = collect_profiles(tiny_config())
        assert run.manifest_path is not None
        summary = obs.summarize(obs.read_events(run.manifest_path))
        assert summary["complete"]
        assert set(summary["workloads"]) == set(WORKLOADS)
        assert all(k["status"] == "ok" for k in summary["kernels"].values())

    def test_no_manifest_without_cache(self, cache_dir):
        run = collect_profiles(tiny_config(use_cache=False))
        assert run.manifest_path is None
        assert not cache_dir.exists()

    def test_manifest_forced(self, cache_dir):
        run = collect_profiles(tiny_config(use_cache=False), manifest=True)
        assert run.manifest_path is not None
        assert obs.summarize(obs.read_events(run.manifest_path))["complete"]

    def test_manifest_disabled_explicitly(self, cache_dir):
        run = collect_profiles(tiny_config(), manifest=False)
        assert run.manifest_path is None
        assert not (cache_dir / "runs").exists()


class TestInjectedRaise:
    def test_failure_recorded_not_fatal(self, cache_dir, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "compress=raise")
        run = collect_profiles(tiny_config())
        assert not run.ok
        assert [p.name for p in run] == ["li", "tomcatv"]
        (failure,) = run.failures
        assert failure.name == "compress"
        assert failure.kind == "RuntimeError"
        assert failure.attempts == 2  # first try + one retry

    def test_manifest_marks_failure(self, cache_dir, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "compress=raise")
        run = collect_profiles(tiny_config())
        summary = obs.summarize(obs.read_events(run.manifest_path))
        assert summary["complete"]
        assert summary["kernels"]["compress"]["status"] == "failed"
        assert summary["kernels"]["compress"]["attempts"] == 2
        assert summary["kernels"]["li"]["status"] == "ok"

    def test_zero_retries(self, cache_dir, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "compress=raise")
        run = collect_profiles(tiny_config(task_retries=0))
        (failure,) = run.failures
        assert failure.attempts == 1


class TestResume:
    def test_resume_recomputes_only_missing(self, cache_dir, monkeypatch):
        config = tiny_config()
        monkeypatch.setenv(FAULT_ENV, "compress=raise")
        interrupted = collect_profiles(config)
        assert [f.name for f in interrupted.failures] == ["compress"]

        monkeypatch.delenv(FAULT_ENV)
        resumed = collect_profiles(config)
        assert resumed.ok
        assert sorted(resumed.resumed) == ["li", "tomcatv"]
        assert [p.name for p in resumed] == list(WORKLOADS)

    def test_resume_bit_identical_to_uninterrupted(
        self, tmp_path, monkeypatch
    ):
        config = tiny_config()

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "faulted"))
        monkeypatch.setenv(FAULT_ENV, "compress=raise")
        collect_profiles(config)
        monkeypatch.delenv(FAULT_ENV)
        resumed = collect_profiles(config)

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
        clean = collect_profiles(config)

        assert resumed.ok and clean.ok
        assert list(resumed) == list(clean)  # dataclass equality, all fields

    def test_resumed_runs_recorded_in_manifest(self, cache_dir):
        config = tiny_config()
        collect_profiles(config)
        warm = collect_profiles(config)
        summary = obs.summarize(obs.read_events(warm.manifest_path))
        assert sorted(summary["resumed"]) == sorted(WORKLOADS)
        assert all(k["source"] == "cache"
                   for k in summary["kernels"].values())


class TestWorkerCrash:
    def test_pool_crash_degrades_to_sequential(self, cache_dir, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "compress=crash")
        config = tiny_config(max_workers=2, task_retries=0)
        run = collect_profiles(config)
        # the crashing kernel re-raises (deterministically) in the
        # sequential fallback and is recorded as failed; the healthy
        # kernels all complete
        assert [p.name for p in run] == ["li", "tomcatv"]
        (failure,) = run.failures
        assert failure.name == "compress"

        events = obs.read_events(run.manifest_path)
        kinds = [e["event"] for e in events]
        assert "worker_crash" in kinds
        assert "fallback_sequential" in kinds
        assert kinds[-1] == "run_end"
        summary = obs.summarize(events)
        assert summary["complete"]
        assert summary["worker_crashes"] == 1
        assert summary["kernels"]["compress"]["status"] == "failed"

    def test_crash_then_resume(self, cache_dir, monkeypatch):
        config = tiny_config(max_workers=2, task_retries=0)
        monkeypatch.setenv(FAULT_ENV, "compress=crash")
        collect_profiles(config)
        monkeypatch.delenv(FAULT_ENV)
        resumed = collect_profiles(config)
        assert resumed.ok
        assert [p.name for p in resumed] == list(WORKLOADS)
        assert "compress" not in resumed.resumed


class TestTimeout:
    def test_hung_kernel_times_out(self, cache_dir, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "compress=sleep60")
        config = tiny_config(
            max_workers=2, task_timeout=1.0, task_retries=0
        )
        run = collect_profiles(config)
        (failure,) = run.failures
        assert failure.name == "compress"
        assert failure.kind == "TimeoutError"
        assert [p.name for p in run] == ["li", "tomcatv"]
        summary = obs.summarize(obs.read_events(run.manifest_path))
        assert summary["complete"]
        assert summary["kernels"]["compress"]["status"] == "failed"


class TestFaultInjectionParsing:
    def test_no_fault_for_other_kernels(self, cache_dir, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "gcc=raise")
        profile = run_profile("li", tiny_config())
        assert profile.name == "li"

    def test_multiple_clauses(self, cache_dir, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "li=raise,compress=raise")
        run = collect_profiles(tiny_config(task_retries=0))
        assert sorted(f.name for f in run.failures) == ["compress", "li"]
        assert [p.name for p in run] == ["tomcatv"]
