"""Static-mode serving, the estimate CLI, and the validation harness."""

from __future__ import annotations

import json

import pytest

from repro.exp.config import ExperimentConfig
from repro.exp.service.server import ServiceFrontend
from repro.static import validate as sv


@pytest.fixture
def frontend(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # isolate BENCH_static.json lookup
    return ServiceFrontend(ExperimentConfig(max_instructions=4_000))


class TestServeStaticMode:
    def test_static_mode_is_always_a_hot_hit(self, frontend):
        code, body = frontend.dispatch(
            "/profile", {"workload": "li", "mode": "static"}
        )
        assert code == 200
        assert body["source"] == "static"
        assert body["profile"]["percent_reusable"] > 0.0

    def test_static_answers_are_memoised(self, frontend):
        _, first = frontend.dispatch(
            "/profile", {"workload": "li", "mode": "static"}
        )
        _, second = frontend.dispatch(
            "/profile", {"workload": "li", "mode": "static"}
        )
        assert second is first

    def test_unknown_workload_404(self, frontend):
        code, _ = frontend.dispatch(
            "/profile", {"workload": "nope", "mode": "static"}
        )
        assert code == 404

    def test_band_quoted_when_recorded(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        report = {
            "budget": 4_000, "window": 256, "scale": 1,
            "kernels": {"li": {"errors": {"percent_reusable": 0.03},
                               "static": {}, "dynamic": {}}},
            "families": {},
            "summary": {},
        }
        (tmp_path / "BENCH_static.json").write_text(json.dumps(report))
        frontend = ServiceFrontend(ExperimentConfig(max_instructions=4_000))
        _, body = frontend.dispatch(
            "/profile", {"workload": "li", "mode": "static"}
        )
        assert body["error_band"] == {"percent_reusable": 0.03}

    def test_dynamic_mode_untouched(self, frontend):
        # without mode=static the cold path still enqueues
        code, body = frontend.dispatch("/profile", {"workload": "li"})
        assert code == 202
        assert body["source"] == "enqueued"


class TestEstimateCli:
    def test_estimate_command(self, capsys):
        from repro.cli import main

        assert main(["estimate", "li", "--budget", "4000"]) == 0
        out = capsys.readouterr().out
        assert "no execution" in out
        assert "base_ipc" in out


class TestValidationHarness:
    def test_bands_roundtrip_and_check(self, tmp_path):
        config = ExperimentConfig(
            max_instructions=1_500,
            workloads=("li", "compress"),
        )
        report = sv.validate_static(config, include_families=False)
        assert set(report["kernels"]) == {"li", "compress"}

        path = tmp_path / "bands.json"
        sv.write_bands(report, path)
        recorded = sv.load_bands(path)
        assert recorded is not None
        assert sv.kernel_band(recorded, "li")

        # a fresh identical report is always within its own bands
        assert sv.check_bands(report, recorded) == []

        # an error past the tolerance is flagged
        worse = json.loads(json.dumps(report))
        worse["kernels"]["li"]["errors"]["percent_reusable"] = 0.99
        problems = sv.check_bands(worse, recorded)
        assert any("li.percent_reusable" in p for p in problems)

    def test_load_bands_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        assert sv.load_bands(path) is None
        path.write_text('{"no": "kernels"}')
        assert sv.load_bands(path) is None
        assert sv.load_bands(tmp_path / "absent.json") is None
