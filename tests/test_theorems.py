"""Theorems 1 and 2 of the paper, checked as executable properties.

Theorem 1: if a trace is reusable (its live-in locations hold the same
values as in a previous execution of the same trace), then every
instruction in it is individually reusable.  We verify the contrapositive
machinery directly on randomly generated straight-line programs executed
many times with inputs drawn from a small pool (so repetitions happen).

Theorem 2: individually reusable instructions do NOT make the enclosing
trace reusable — we construct the paper's counterexample explicitly.
"""

from __future__ import annotations

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ilr import instruction_reusability
from repro.core.traces import compute_liveness
from repro.isa.opcodes import Opcode
from repro.vm.trace import DynInst

_OPS = [operator.add, operator.sub, operator.mul, operator.and_]


@st.composite
def straight_line_programs(draw):
    """A random register program plus several runs' initial values."""
    n_regs = draw(st.integers(min_value=2, max_value=4))
    n_instrs = draw(st.integers(min_value=1, max_value=6))
    program = [
        (
            draw(st.integers(0, len(_OPS) - 1)),
            draw(st.integers(0, n_regs - 1)),  # dst
            draw(st.integers(0, n_regs - 1)),  # src1
            draw(st.integers(0, n_regs - 1)),  # src2
        )
        for _ in range(n_instrs)
    ]
    n_runs = draw(st.integers(min_value=2, max_value=6))
    runs = [
        tuple(draw(st.integers(0, 1)) for _ in range(n_regs)) for _ in range(n_runs)
    ]
    return program, runs


def execute_runs(program, runs):
    """Execute every run, concatenating dynamic streams.

    Returns the combined stream and per-run (start, stop) ranges.
    """
    stream: list[DynInst] = []
    ranges = []
    for initial in runs:
        regs = list(initial)
        start = len(stream)
        for pc, (op_idx, dst, src1, src2) in enumerate(program):
            a, b = regs[src1], regs[src2]
            result = _OPS[op_idx](a, b)
            regs[dst] = result
            stream.append(
                DynInst(
                    pc=pc,
                    op=Opcode.ADD,
                    reads=((src1, a), (src2, b)),
                    writes=((dst, result),),
                    latency=1,
                    next_pc=pc + 1,
                )
            )
        ranges.append((start, len(stream)))
    return stream, ranges


class TestTheorem1:
    @given(straight_line_programs())
    @settings(max_examples=200, deadline=None)
    def test_reusable_trace_implies_reusable_instructions(self, case):
        program, runs = case
        stream, ranges = execute_runs(program, runs)
        flags = instruction_reusability(stream).flags

        seen_inputs: list[tuple] = []
        for start, stop in ranges:
            live_ins, _ = compute_liveness(stream[start:stop])
            if live_ins in seen_inputs:
                # the whole-run trace is reusable: by Theorem 1 every
                # instruction in it must be instruction-level reusable
                assert all(flags[start:stop]), (
                    f"trace with repeated live-ins {live_ins} contained a "
                    "non-reusable instruction"
                )
            seen_inputs.append(live_ins)

    @given(straight_line_programs())
    @settings(max_examples=200, deadline=None)
    def test_identical_runs_make_second_fully_reusable(self, case):
        program, runs = case
        # force an exact repetition
        runs = [runs[0], runs[0]]
        stream, ranges = execute_runs(program, runs)
        flags = instruction_reusability(stream).flags
        start, stop = ranges[1]
        assert all(flags[start:stop])

    @given(straight_line_programs())
    @settings(max_examples=100, deadline=None)
    def test_outputs_determined_by_inputs(self, case):
        """The lemma underpinning reuse: same live-ins => same live-outs."""
        program, runs = case
        stream, ranges = execute_runs(program, runs)
        observed: dict[tuple, tuple] = {}
        for start, stop in ranges:
            live_ins, live_outs = compute_liveness(stream[start:stop])
            if live_ins in observed:
                assert observed[live_ins] == live_outs
            else:
                observed[live_ins] = live_outs


class TestTheorem2:
    def test_counterexample(self):
        """Instructions reusable individually; the trace is not.

        Instruction A reads r1, instruction B reads r2.  Segment 3
        pairs A's inputs from segment 1 with B's inputs from segment 2
        — each instruction has been seen, the combination has not.
        """

        def segment(r1, r2):
            return [
                DynInst(0, Opcode.ADD, ((1, r1),), ((3, r1 + 1),), 1, 1),
                DynInst(1, Opcode.ADD, ((2, r2),), ((4, r2 + 2),), 1, 2),
            ]

        stream = segment(0, 0) + segment(1, 1) + segment(0, 1)
        flags = instruction_reusability(stream).flags
        # both instructions of the third segment are reusable...
        assert flags[4] and flags[5]
        # ...but the third segment's live-ins were never seen as a pair
        seen = []
        for start in (0, 2, 4):
            live_ins, _ = compute_liveness(stream[start : start + 2])
            if start == 4:
                assert live_ins not in seen
            seen.append(live_ins)
