"""Shard queue, worker shards, sweep coordinator and the serve front end."""

from __future__ import annotations

import asyncio
import dataclasses
import json
import subprocess
import sys
import time

import pytest

from repro.exp.config import ExperimentConfig
from repro.exp.runner import BenchmarkProfile, collect_profiles, run_profile
from repro.exp.service import (
    ShardQueue,
    enqueue_sweep,
    run_service_sweep,
    run_worker,
)
from repro.exp.service.queue import shard_job_id
from repro.exp.service.server import (
    ServiceFrontend,
    config_from_query,
    start_server,
)
from repro.vm import tracecache

TINY = ExperimentConfig(max_instructions=600, workloads=("li",),
                        max_workers=1)
SMALL = ExperimentConfig(max_instructions=1200, workloads=("compress", "li"),
                         max_workers=1)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """A fresh shared cache directory (exported to child processes)."""
    target = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
    return target


class TestShardJobId:
    def test_content_addressed(self):
        assert shard_job_id("li", TINY) == shard_job_id("li", TINY)
        assert shard_job_id("li", TINY) != shard_job_id("gcc", TINY)
        other = dataclasses.replace(TINY, max_instructions=601)
        assert shard_job_id("li", TINY) != shard_job_id("li", other)

    def test_execution_knobs_do_not_change_id(self):
        # same semantic work => same shard, whatever runs it
        other = dataclasses.replace(TINY, max_workers=8, task_retries=5)
        assert shard_job_id("li", TINY) == shard_job_id("li", other)

    def test_readable_prefix(self):
        assert shard_job_id("li", TINY).startswith("li-")


class TestShardQueue:
    def test_enqueue_then_idempotent(self, cache_dir):
        queue = ShardQueue()
        job_id, state = queue.enqueue("li", TINY)
        assert state == "pending"
        assert queue.enqueue("li", TINY) == (job_id, "pending")
        assert queue.counts()["pending"] == 1

    def test_claim_records_lease(self, cache_dir):
        import os

        queue = ShardQueue()
        queue.enqueue("li", TINY)
        job = queue.claim("w1")
        assert job is not None
        assert job.state == "leased"
        assert job.worker == "w1"
        assert job.pid == os.getpid()
        assert job.attempts == 1
        assert queue.counts() == {"pending": 0, "leased": 1,
                                  "done": 0, "failed": 0}
        # the lease survives a round trip through the queue record
        found = queue.find(job.job_id)
        assert found.worker == "w1" and found.state == "leased"

    def test_claim_empty_returns_none(self, cache_dir):
        assert ShardQueue().claim("w1") is None

    def test_claimed_config_round_trips(self, cache_dir):
        queue = ShardQueue()
        queue.enqueue("li", TINY)
        job = queue.claim("w1")
        config = job.experiment_config()
        assert config.cache_key() == TINY.cache_key()
        assert config.workloads == TINY.workloads

    def test_complete_settles_shard(self, cache_dir):
        queue = ShardQueue()
        queue.enqueue("li", TINY)
        job = queue.claim("w1")
        queue.complete(job)
        assert queue.counts()["done"] == 1
        assert queue.outstanding() == 0
        assert queue.find(job.job_id).state == "done"
        # enqueueing a done shard is a no-op
        assert queue.enqueue("li", TINY) == (job.job_id, "done")

    def test_fail_records_error_and_requeues_on_demand(self, cache_dir):
        queue = ShardQueue()
        queue.enqueue("li", TINY)
        job = queue.claim("w1")
        queue.fail(job, "RuntimeError: boom")
        found = queue.find(job.job_id)
        assert found.state == "failed" and found.error == "RuntimeError: boom"
        # retry_failed=False leaves the tombstone alone
        assert queue.enqueue("li", TINY, retry_failed=False) == (
            job.job_id, "failed"
        )
        # the default re-queues an explicit retry request
        assert queue.enqueue("li", TINY) == (job.job_id, "pending")
        assert queue.counts()["failed"] == 0

    def test_steal_dead_pid_lease(self, cache_dir):
        queue = ShardQueue()
        queue.enqueue("li", TINY)
        job = queue.claim("w1")
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        job.pid = child.pid  # the holder "crashed"
        queue._write("leased", job)
        assert queue.steal_stale("w2") == 1
        stolen = queue.claim("w2")
        assert stolen is not None
        assert stolen.worker == "w2"
        assert stolen.attempts == 2

    def test_live_fresh_lease_not_stolen(self, cache_dir):
        queue = ShardQueue()
        queue.enqueue("li", TINY)
        queue.claim("w1")
        assert queue.steal_stale("w2") == 0
        assert queue.claim("w2") is None

    def test_live_expired_lease_stolen_after_ttl(self, cache_dir):
        queue = ShardQueue()
        queue.enqueue("li", TINY)
        job = queue.claim("w1")
        job.claimed_t = time.time() - 10_000
        queue._write("leased", job)
        assert queue.steal_stale("w2", lease_ttl=600) == 1

    def test_unreadable_lease_judged_by_file_age(self, cache_dir):
        import os

        queue = ShardQueue()
        queue.enqueue("li", TINY)
        job = queue.claim("w1")
        path = queue._path("leased", job.job_id)
        path.write_text("{not json")
        # a freshly-mangled (= freshly-claimed, rewrite pending) lease
        # must NOT be stolen...
        assert queue.steal_stale("w2", lease_ttl=1.0) == 0
        # ...but an old one is fair game
        os.utime(path, (time.time() - 3600, time.time() - 3600))
        assert queue.steal_stale("w2", lease_ttl=1.0) == 1


class TestWorker:
    def test_worker_drains_queue_into_cache(self, cache_dir):
        queue = ShardQueue()
        plan = enqueue_sweep(TINY, queue=queue)
        assert plan.enqueued == ["li"]
        report = run_worker("wtest", queue=queue, manifest=None)
        assert report.completed == ["li"] and not report.failed
        assert queue.counts()["done"] == 1
        cached = tracecache.load_cached_profile("li", TINY.cache_key())
        assert isinstance(cached, BenchmarkProfile)

    def test_failed_shard_keeps_runner_error_shape(self, cache_dir,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "li=raise")
        config = dataclasses.replace(TINY, task_retries=0)
        queue = ShardQueue()
        enqueue_sweep(config, queue=queue)
        report = run_worker("wtest", queue=queue, manifest=None)
        assert report.failed == ["li"]
        job = queue.find(shard_job_id("li", config))
        assert job.state == "failed"
        assert job.error.startswith("RuntimeError: ")

    def test_max_shards_bounds_serve_mode_loop(self, cache_dir):
        queue = ShardQueue()
        enqueue_sweep(TINY, queue=queue)
        report = run_worker("wtest", queue=queue, manifest=None,
                            exit_when_empty=False, max_shards=1)
        assert report.completed == ["li"]


class TestServiceSweep:
    def test_requires_the_shared_cache(self, cache_dir):
        with pytest.raises(ValueError):
            enqueue_sweep(dataclasses.replace(TINY, use_cache=False))

    def test_inline_sweep_bit_identical_to_collect_profiles(
        self, cache_dir, tmp_path, monkeypatch,
    ):
        run = run_service_sweep(SMALL, workers=0, manifest=False)
        assert run.ok
        assert [p.name for p in run] == list(SMALL.workloads)

        # reference: the classic single-process path, separate cache
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ref-cache"))
        reference = collect_profiles(SMALL, manifest=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        assert list(run) == list(reference)

    def test_second_sweep_resumes_everything(self, cache_dir):
        run_service_sweep(TINY, workers=0, manifest=False)
        plan = enqueue_sweep(TINY)
        assert plan.resumed == ["li"] and not plan.enqueued

    def test_spawned_worker_process_completes_sweep(self, cache_dir):
        run = run_service_sweep(TINY, workers=1, manifest=False)
        assert run.ok and [p.name for p in run] == ["li"]
        done = ShardQueue().jobs("done")
        assert [j.workload for j in done] == ["li"]
        # the shard really ran in the child, not the coordinator
        import os

        assert done[0].pid != os.getpid()

    def test_failures_surface_in_profile_run(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "li=raise")
        config = dataclasses.replace(TINY, task_retries=0)
        run = run_service_sweep(config, workers=0, manifest=False)
        assert not run.ok
        assert [f.name for f in run.failures] == ["li"]
        assert run.failures[0].kind == "RuntimeError"


def _serve(targets, defaults=None, setup=None):
    """Run the front end on an ephemeral port; fetch each target."""

    async def fetch(port, target):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(
            f"GET {target} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, body = raw.partition(b"\r\n\r\n")
        return int(head.split()[1]), json.loads(body)

    async def main():
        server, frontend, port = await start_server(
            port=0, frontend=ServiceFrontend(defaults)
        )
        if setup is not None:
            setup(frontend)
        try:
            return [await fetch(port, t) for t in targets]
        finally:
            server.close()
            await server.wait_closed()

    return asyncio.run(main())


class TestConfigFromQuery:
    def test_no_overrides_is_identity(self):
        assert config_from_query({}, TINY) is TINY

    def test_overrides_apply(self):
        config = config_from_query({"budget": "900", "window": "64"}, TINY)
        assert config.max_instructions == 900
        assert config.window_size == 64
        assert config.workloads == TINY.workloads

    def test_bad_value_raises(self):
        with pytest.raises(ValueError):
            config_from_query({"budget": "lots"}, TINY)


class TestServeFrontend:
    def test_health(self, cache_dir):
        [(status, body)] = _serve(["/health"])
        assert status == 200 and body["ok"] is True

    def test_unknown_route_and_bad_params(self, cache_dir):
        results = _serve(["/nope", "/profile", "/profile?workload=li&budget=x",
                          "/job"], defaults=TINY)
        assert [status for status, _ in results] == [404, 400, 400, 400]

    def test_profile_miss_enqueues(self, cache_dir):
        [(status, body)] = _serve(["/profile?workload=li"], defaults=TINY)
        assert status == 202
        assert body["source"] == "enqueued"
        assert ShardQueue().counts()["pending"] == 1
        # the job endpoint can see what was enqueued
        results = _serve([f"/job?id={body['job']}", "/job?id=missing"],
                         defaults=TINY)
        assert results[0][0] == 200
        assert results[0][1]["job"]["state"] == "pending"
        assert results[1][0] == 404

    def test_unknown_workload_404(self, cache_dir):
        [(status, body)] = _serve(["/profile?workload=doom"], defaults=TINY)
        assert status == 404

    def test_warm_profile_hit_never_touches_the_vm(self, cache_dir,
                                                   monkeypatch):
        expected = run_profile("li", TINY)  # warm the cache

        def explode(*args, **kwargs):
            raise AssertionError("the VM ran on a warm cache hit")

        from repro.vm import machine as machine_mod

        monkeypatch.setattr(machine_mod.Machine, "run", explode)
        monkeypatch.setattr("repro.exp.runner.run_profile", explode)
        [(status, body)] = _serve(["/profile?workload=li"], defaults=TINY)
        assert status == 200
        assert body["source"] == "cache"
        assert body["profile"]["name"] == "li"
        assert body["profile"]["dynamic_count"] == expected.dynamic_count

    def test_profile_query_overrides_select_other_entry(self, cache_dir):
        run_profile("li", TINY)
        [(status, body)] = _serve(["/profile?workload=li&budget=601"],
                                  defaults=TINY)
        assert status == 202  # different budget, different cache entry

    def test_figure_miss_then_hit(self, cache_dir):
        config = dataclasses.replace(SMALL, workloads=("applu", "li"))
        [(status, body)] = _serve(["/figure?name=figure3"], defaults=config)
        assert status == 202
        assert set(body["missing"]) == {"applu", "li"}
        for name in config.workloads:
            run_profile(name, config)
        results = _serve(["/figure?name=figure3", "/figure?name=figure99"],
                         defaults=config)
        assert results[0][0] == 200
        assert results[0][1]["source"] == "cache"
        assert results[0][1]["text"].strip()
        assert results[1][0] == 404

    def test_status_reports_queue_and_cache(self, cache_dir):
        run_profile("li", TINY)
        [(status, body)] = _serve(["/status"], defaults=TINY)
        assert status == 200
        assert body["queue"] == {"pending": 0, "leased": 0,
                                 "done": 0, "failed": 0}
        assert body["cache"]["profiles"] == 1
        assert body["cache"]["profile_index"] == 1
