"""Property-based invariants of the timing model and reuse analyses."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ilr import ilr_reuse_plan, instruction_reusability
from repro.core.reuse_tlr import ConstantReuseLatency, tlr_reuse_plan
from repro.core.traces import maximal_reusable_spans
from repro.dataflow.model import DataflowModel
from repro.isa.opcodes import Opcode
from repro.vm.trace import DynInst


@st.composite
def dyn_streams(draw):
    """Random dependence-realistic streams over a few locations.

    Values written are a function of values read, so re-executions of
    the same (pc, inputs) produce the same outputs — the determinism
    the reuse machinery assumes (and real traces satisfy).
    """
    n_locs = draw(st.integers(min_value=2, max_value=5))
    n = draw(st.integers(min_value=1, max_value=60))
    values = [0] * n_locs
    stream = []
    for i in range(n):
        pc = draw(st.integers(0, 7))
        src1 = draw(st.integers(0, n_locs - 1))
        src2 = draw(st.integers(0, n_locs - 1))
        dst = draw(st.integers(0, n_locs - 1))
        latency = draw(st.sampled_from([1, 1, 2, 4, 8]))
        a, b = values[src1], values[src2]
        result = (a + b + pc) % 7  # deterministic in (pc, inputs)
        values[dst] = result
        stream.append(
            DynInst(
                pc=pc,
                op=Opcode.ADD,
                reads=((src1, a), (src2, b)),
                writes=((dst, result),),
                latency=latency,
                next_pc=pc + 1,
            )
        )
    return stream


@given(dyn_streams(), st.integers(min_value=1, max_value=16))
@settings(max_examples=150, deadline=None)
def test_finite_window_never_faster_than_infinite(stream, window):
    inf = DataflowModel(None).analyze(stream)
    win = DataflowModel(window).analyze(stream)
    assert win.total_cycles >= inf.total_cycles - 1e-9


@given(dyn_streams(), st.integers(min_value=1, max_value=8))
@settings(max_examples=100, deadline=None)
def test_window_monotone_in_size(stream, window):
    small = DataflowModel(window).analyze(stream)
    large = DataflowModel(window * 2).analyze(stream)
    assert large.total_cycles <= small.total_cycles + 1e-9


@given(dyn_streams())
@settings(max_examples=150, deadline=None)
def test_ilr_oracle_never_slows_down(stream):
    flags = instruction_reusability(stream).flags
    plan = ilr_reuse_plan(stream, flags, 1.0)
    base = DataflowModel(None).analyze(stream)
    reused = DataflowModel(None).analyze(stream, plan)
    assert reused.total_cycles <= base.total_cycles + 1e-9


@given(dyn_streams())
@settings(max_examples=150, deadline=None)
def test_tlr_oracle_never_slows_down_infinite_window(stream):
    flags = instruction_reusability(stream).flags
    spans = maximal_reusable_spans(stream, flags)
    plan = tlr_reuse_plan(stream, spans, ConstantReuseLatency(1.0))
    base = DataflowModel(None).analyze(stream)
    reused = DataflowModel(None).analyze(stream, plan)
    assert reused.total_cycles <= base.total_cycles + 1e-9


@given(dyn_streams(), st.integers(min_value=1, max_value=4))
@settings(max_examples=100, deadline=None)
def test_ilr_speedup_monotone_in_reuse_latency(stream, latency):
    flags = instruction_reusability(stream).flags
    model = DataflowModel(None)
    fast = model.analyze(stream, ilr_reuse_plan(stream, flags, float(latency)))
    slow = model.analyze(stream, ilr_reuse_plan(stream, flags, float(latency + 1)))
    assert fast.total_cycles <= slow.total_cycles + 1e-9


@given(dyn_streams())
@settings(max_examples=100, deadline=None)
def test_spans_cover_reusable_instructions_exactly(stream):
    flags = instruction_reusability(stream).flags
    spans = maximal_reusable_spans(stream, flags)
    covered = set()
    for s in spans:
        for i in range(s.start, s.stop):
            assert flags[i]
            assert i not in covered  # spans are disjoint
            covered.add(i)
    assert len(covered) == sum(flags)


@given(dyn_streams())
@settings(max_examples=100, deadline=None)
def test_spans_are_maximal(stream):
    flags = instruction_reusability(stream).flags
    spans = maximal_reusable_spans(stream, flags)
    for s in spans:
        if s.start > 0:
            assert not flags[s.start - 1]
        if s.stop < len(stream):
            assert not flags[s.stop]


@given(dyn_streams())
@settings(max_examples=100, deadline=None)
def test_liveness_invariant_live_in_not_written_before_read(stream):
    flags = instruction_reusability(stream).flags
    for span in maximal_reusable_spans(stream, flags):
        body = stream[span.start : span.stop]
        live_in_locs = {loc for loc, _ in span.live_ins}
        written: set[int] = set()
        for inst in body:
            for loc, _ in inst.reads:
                if loc in live_in_locs and loc not in written:
                    live_in_locs.discard(loc)  # first read seen before any write
            for loc, _ in inst.writes:
                written.add(loc)
        # every live-in must have been read before written
        assert not live_in_locs


@given(dyn_streams())
@settings(max_examples=100, deadline=None)
def test_analysis_does_not_mutate_stream(stream):
    snapshot = [repr(d) for d in stream]
    flags = instruction_reusability(stream).flags
    spans = maximal_reusable_spans(stream, flags)
    DataflowModel(8).analyze(stream, tlr_reuse_plan(stream, spans, ConstantReuseLatency(1.0)))
    assert [repr(d) for d in stream] == snapshot
