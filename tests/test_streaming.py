"""The streaming pipeline's bit-identity contract.

Every consumer of a chunk stream — the streaming dataflow engine, the
RTM simulator, the ILR/distance/block/prediction baselines, and the
profile runner — must produce numbers *bit-identical* to its
materialized counterpart, at any chunk size.  The beyond-RAM test then
proves the point of it all: under an address-space limit where the
materialized pipeline dies of MemoryError, the streaming pipeline
completes and still matches.
"""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

import repro.workloads  # registers the kernels
from repro.baselines.block import basic_block_spans
from repro.baselines.ilr import instruction_reusability, reusability_by_class
from repro.baselines.prediction import (
    LastValuePredictor,
    StridePredictor,
    value_predictability,
)
from repro.baselines.reuse_distance import signature_reuse_distances
from repro.core.rtm.collector import FixedLengthHeuristic, ILRHeuristic
from repro.core.rtm.memory import RTM_PRESETS
from repro.core.rtm.simulator import FiniteReuseSimulator
from repro.core.traces import maximal_reusable_spans
from repro.dataflow.model import FusedDataflowEngine, Scenario
from repro.dataflow.streaming import StreamingDataflowEngine
from repro.exp.config import ExperimentConfig
from repro.exp.runner import run_profile, run_profile_streaming
from repro.vm.tracestream import as_chunk_stream
from repro.workloads.base import all_workloads, run_workload, stream_workload

KERNELS = [w.name for w in all_workloads()]

SCENARIOS = [
    Scenario("base", window_size=None),
    Scenario("base", window_size=256),
    Scenario("base", window_size=7),
    Scenario("ilr", window_size=None, latency=1.0),
    Scenario("ilr", window_size=256, latency=2.0),
    Scenario("tlr", window_size=None, latency=1.0),
    Scenario("tlr", window_size=256, latency=1.0),
    Scenario("tlr", window_size=7, latency=3.0),
    Scenario("tlr", window_size=256, k=1 / 8),
    Scenario("tlr", window_size=256, latency=1.0, fetch_free=True),
]


def fused_results(trace):
    reuse = instruction_reusability(trace)
    spans = maximal_reusable_spans(trace, reuse.flags)
    engine = FusedDataflowEngine(trace, flags=reuse.flags, spans=spans)
    return engine.analyze_all(SCENARIOS), reuse, spans


class TestStreamingEngine:
    @pytest.mark.parametrize("chunk_size", [7, 997, 65536])
    def test_bit_identical_to_fused(self, chunk_size):
        trace = run_workload("compress", max_instructions=4_000)
        expected, reuse, spans = fused_results(trace)
        engine = StreamingDataflowEngine(trace, chunk_size=chunk_size)
        got = engine.analyze_all(SCENARIOS)
        assert got == expected
        assert engine.n == len(trace)
        assert engine.reuse.reusable_count == reuse.reusable_count
        assert engine.reuse.percent_reusable == reuse.percent_reusable
        assert engine.span_count == len(spans)

    def test_all_kernels_one_chunk_size(self):
        for name in KERNELS:
            trace = run_workload(name, max_instructions=2_000)
            expected, _, _ = fused_results(trace)
            got = StreamingDataflowEngine(
                trace, chunk_size=311).analyze_all(SCENARIOS)
            assert got == expected, name

    def test_io_stats_match(self):
        from repro.core.stats import trace_io_stats

        trace = run_workload("li", max_instructions=3_000)
        reuse = instruction_reusability(trace)
        spans = maximal_reusable_spans(trace, reuse.flags)
        engine = StreamingDataflowEngine(trace, chunk_size=100)
        engine.analyze_all([Scenario("base", window_size=None)])
        assert engine.io_stats == trace_io_stats(spans)


class TestStreamingConsumers:
    @pytest.fixture(scope="class")
    def kernel(self):
        name = "compress"
        trace = run_workload(name, max_instructions=3_000)
        return name, trace

    def stream(self, trace, chunk_size=257):
        return as_chunk_stream(trace, chunk_size=chunk_size)

    def test_reusability(self, kernel):
        _, trace = kernel
        expected = instruction_reusability(trace)
        got = instruction_reusability(self.stream(trace))
        assert got.flags == expected.flags
        assert got.reusable_count == expected.reusable_count
        assert got.signature_count == expected.signature_count
        assert got.static_count == expected.static_count

    def test_reusability_by_class(self, kernel):
        _, trace = kernel
        flags = instruction_reusability(trace).flags
        assert (reusability_by_class(self.stream(trace), flags)
                == reusability_by_class(trace, flags))

    def test_maximal_spans(self, kernel):
        _, trace = kernel
        flags = instruction_reusability(trace).flags
        assert (maximal_reusable_spans(self.stream(trace), flags)
                == maximal_reusable_spans(trace, flags))

    def test_block_spans(self, kernel):
        _, trace = kernel
        flags = instruction_reusability(trace).flags
        assert (basic_block_spans(self.stream(trace), flags)
                == basic_block_spans(trace, flags))

    def test_predictors(self, kernel):
        _, trace = kernel
        for predictor_cls in (LastValuePredictor, StridePredictor):
            expected = value_predictability(trace, predictor_cls())
            got = value_predictability(self.stream(trace), predictor_cls())
            assert got.flags == expected.flags
            assert got.predicted_count == expected.predicted_count

    def test_reuse_distance(self, kernel):
        _, trace = kernel
        expected = signature_reuse_distances(trace)
        got = signature_reuse_distances(self.stream(trace))
        assert got.distances == expected.distances
        assert got.total_count == expected.total_count

    @pytest.mark.parametrize("reuse_test", ["compare", "invalidate"])
    def test_rtm_simulator(self, kernel, reuse_test):
        _, trace = kernel
        for heuristic in (ILRHeuristic(False), ILRHeuristic(True),
                          FixedLengthHeuristic(4)):
            sim = FiniteReuseSimulator(
                RTM_PRESETS["512"], heuristic, reuse_test=reuse_test)
            expected = sim.run(trace)
            sim2 = FiniteReuseSimulator(
                RTM_PRESETS["512"], heuristic, reuse_test=reuse_test)
            got = sim2.run(self.stream(trace, chunk_size=101))
            assert got.reused_instructions == expected.reused_instructions
            assert got.reuse_events == expected.reuse_events
            assert got.reused_ranges == expected.reused_ranges
            assert got.rtm_insertions == expected.rtm_insertions
            assert got.rtm_occupancy == expected.rtm_occupancy
            assert got.rtm_invalidations == expected.rtm_invalidations
            assert (got.collector_limit_terminations
                    == expected.collector_limit_terminations)


class TestStreamingProfiles:
    CONFIG = ExperimentConfig(
        max_instructions=1_500,
        reuse_latencies=(1, 4),
        proportional_ks=(1 / 8, 1.0),
        use_cache=False,
    )

    def test_profiles_bit_identical_all_kernels(self):
        for name in KERNELS:
            a = run_profile(name, self.CONFIG)
            b = run_profile_streaming(name, self.CONFIG)
            assert dataclasses.asdict(a) == dataclasses.asdict(b), name

    def test_chunk_size_invariance(self):
        a = run_profile("go", self.CONFIG)
        for chunk in (1, 7, 4096):
            cfg = dataclasses.replace(self.CONFIG, stream_chunk_size=chunk)
            b = run_profile_streaming("go", cfg)
            assert dataclasses.asdict(a) == dataclasses.asdict(b), chunk

    def test_run_profile_dispatches_on_config(self):
        cfg = dataclasses.replace(self.CONFIG, streaming=True)
        a = run_profile("li", cfg)
        b = run_profile("li", self.CONFIG)
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_run_profile_dispatches_on_env(self, monkeypatch):
        from repro.exp import runner

        calls = []
        real = runner.run_profile_streaming

        def spy(name, config=None):
            calls.append(name)
            return real(name, config)

        monkeypatch.setattr(runner, "run_profile_streaming", spy)
        monkeypatch.setenv("REPRO_STREAMING", "1")
        runner.run_profile("li", self.CONFIG)
        assert calls == ["li"]

    def test_cache_key_shared_across_pipelines(self):
        base = self.CONFIG
        stream_cfg = dataclasses.replace(
            base, streaming=True, stream_chunk_size=777)
        assert base.cache_key() == stream_cfg.cache_key()


#: Budget/limit pair at which the materialized pipeline exceeds the
#: address-space limit but the O(chunk) streaming pipeline does not
#: (measured boundary: materialized needs >192 MiB from ~600k
#: instructions on, streaming stays under 160 MiB at any budget).
_BEYOND_RAM_BUDGET = 600_000
_BEYOND_RAM_LIMIT = 192 * 1024 * 1024

_MAT_SNIPPET = """\
import resource, sys
resource.setrlimit(resource.RLIMIT_AS,
                   ({limit}, {limit}))
from repro.workloads.base import run_workload
from repro.baselines.ilr import instruction_reusability
from repro.core.traces import maximal_reusable_spans
from repro.dataflow.model import FusedDataflowEngine, Scenario
t = run_workload("compress", max_instructions={budget},
                 use_cache=False, backend="fast")
r = instruction_reusability(t)
s = maximal_reusable_spans(t, r.flags)
e = FusedDataflowEngine(t, flags=r.flags, spans=s)
e.analyze(Scenario("tlr", window_size=256, latency=1.0))
print("materialized unexpectedly fit")
"""

_STREAM_SNIPPET = """\
import json, resource, sys
resource.setrlimit(resource.RLIMIT_AS,
                   ({limit}, {limit}))
from repro.workloads.base import stream_workload
from repro.dataflow.streaming import StreamingDataflowEngine
from repro.dataflow.model import Scenario
from repro.core.rtm.memory import RTM_PRESETS
from repro.core.rtm.simulator import FiniteReuseSimulator
from repro.core.rtm.collector import ILRHeuristic
e = StreamingDataflowEngine(
    stream_workload("compress", max_instructions={budget}, backend="fast"))
res = e.analyze_all([Scenario("base", window_size=256),
                     Scenario("tlr", window_size=256, latency=1.0)])
sim = FiniteReuseSimulator(RTM_PRESETS["512"], ILRHeuristic(False))
rtm = sim.run(
    stream_workload("compress", max_instructions={budget}, backend="fast"))
print(json.dumps({{
    "n": e.n,
    "percent_reusable": e.reuse.percent_reusable,
    "span_count": e.span_count,
    "base_cycles": res[0].total_cycles,
    "tlr_cycles": res[1].total_cycles,
    "tlr_reused": res[1].reused_count,
    "rtm_reused": rtm.reused_instructions,
    "rtm_events": rtm.reuse_events,
    "rtm_invalidations": rtm.rtm_invalidations,
}}))
"""


class TestBeyondRAM:
    """The acceptance run: a trace whose decoded working set exceeds
    the process address-space limit streams through run -> analyze ->
    RTM bit-identically, where the materialized path dies."""

    def _run(self, snippet):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        code = snippet.format(limit=_BEYOND_RAM_LIMIT,
                              budget=_BEYOND_RAM_BUDGET)
        return subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, env=env)

    def test_materialized_pipeline_exceeds_limit(self):
        proc = self._run(_MAT_SNIPPET)
        assert proc.returncode != 0, (
            "materialized pipeline fit under the limit; raise the "
            f"budget:\n{proc.stdout}")
        assert "MemoryError" in proc.stderr

    def test_streaming_pipeline_completes_and_matches(self):
        proc = self._run(_STREAM_SNIPPET)
        assert proc.returncode == 0, proc.stderr
        got = json.loads(proc.stdout)

        # reference numbers from the materialized pipeline, no limit
        # (the subprocess populated the trace cache, so this is a
        # streamed-v3 cache hit, not a re-execution)
        trace = run_workload("compress",
                             max_instructions=_BEYOND_RAM_BUDGET,
                             backend="fast")
        r = instruction_reusability(trace)
        s = maximal_reusable_spans(trace, r.flags)
        engine = FusedDataflowEngine(trace, flags=r.flags, spans=s)
        base = engine.analyze(Scenario("base", window_size=256))
        tlr = engine.analyze(Scenario("tlr", window_size=256, latency=1.0))
        sim = FiniteReuseSimulator(RTM_PRESETS["512"], ILRHeuristic(False))
        rtm = sim.run(trace)

        assert got["n"] == len(trace)
        assert got["percent_reusable"] == r.percent_reusable
        assert got["span_count"] == len(s)
        assert got["base_cycles"] == base.total_cycles
        assert got["tlr_cycles"] == tlr.total_cycles
        assert got["tlr_reused"] == tlr.reused_count
        assert got["rtm_reused"] == rtm.reused_instructions
        assert got["rtm_events"] == rtm.reuse_events
        assert got["rtm_invalidations"] == rtm.rtm_invalidations


class TestDirectStream:
    """The tee'd execute→analyze path: one execution feeds the analysis
    *and* persists the cache entry, bit- and byte-identical to the
    legacy write-then-reread path."""

    CONFIG = ExperimentConfig(
        max_instructions=1_500,
        reuse_latencies=(1, 4),
        proportional_ks=(1 / 8, 1.0),
    )

    def test_tee_profiles_bit_identical_all_kernels(self, tmp_path,
                                                    monkeypatch):
        """Each kernel's cold profile through the tee equals the legacy
        path's, and the two cache entries are byte-identical (the
        writer re-chunks, so execution segmentation never leaks into
        the file)."""
        import dataclasses as dc

        for name in KERNELS:
            monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a" / name))
            direct = run_profile_streaming(
                name, dc.replace(self.CONFIG, direct_stream=True))
            (entry_a,) = (tmp_path / "a" / name / "traces").glob("*.trace")
            monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b" / name))
            legacy = run_profile_streaming(
                name, dc.replace(self.CONFIG, direct_stream=False))
            (entry_b,) = (tmp_path / "b" / name / "traces").glob("*.trace")
            assert dataclasses.asdict(direct) == dataclasses.asdict(legacy), name
            assert entry_a.read_bytes() == entry_b.read_bytes(), name

    def test_tee_persists_and_replays(self, tmp_path, monkeypatch):
        from repro.vm.tracestream import TeeChunkStream

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        stream = stream_workload("li", max_instructions=1_000,
                                 use_cache=True, direct=True)
        assert isinstance(stream, TeeChunkStream)
        assert not stream.persisted
        first = [len(c) for c in stream.chunks()]
        assert stream.persisted  # complete drain published the entry
        assert sum(first) == 1_000
        # later drains replay the cache entry, not the machine
        assert sum(len(c) for c in stream.chunks()) == 1_000

    def test_abandoned_drain_publishes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        stream = stream_workload("li", max_instructions=5_000,
                                 use_cache=True, chunk_size=100, direct=True)
        it = stream.chunks()
        next(it)
        it.close()  # consumer walks away mid-drain
        assert not stream.persisted
        traces = tmp_path / "cache" / "traces"
        leftovers = list(traces.iterdir()) if traces.exists() else []
        assert [p for p in leftovers if p.suffix == ".trace"] == []
        # the next drain starts over and completes normally
        assert sum(len(c) for c in stream.chunks()) == 5_000
        assert stream.persisted

    def test_env_knob_disables_direct(self, monkeypatch):
        from repro.vm.tracestream import direct_stream_enabled

        assert direct_stream_enabled() is True
        assert direct_stream_enabled(False) is False
        for raw in ("0", "false", "no", "off", ""):
            monkeypatch.setenv("REPRO_DIRECT_STREAM", raw)
            assert direct_stream_enabled() is False
        monkeypatch.setenv("REPRO_DIRECT_STREAM", "1")
        assert direct_stream_enabled() is True
        # an explicit config value beats the environment
        assert direct_stream_enabled(False) is False

    def test_direct_stream_shares_the_profile_cache_key(self):
        import dataclasses as dc

        on = dc.replace(self.CONFIG, direct_stream=True)
        off = dc.replace(self.CONFIG, direct_stream=False)
        assert on.cache_key() == off.cache_key()
