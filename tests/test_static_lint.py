"""``repro lint`` rules over RL sources and assembled programs."""

from __future__ import annotations

from repro.static.lint import (
    lint_paths,
    lint_program,
    lint_source,
    lint_workloads,
)
from repro.vm.assembler import assemble

CLEAN = """
var total = 0

func main() {
    var i = 0
    while (i < 10) {
        total = total + i
        i = i + 1
    }
    return total
}
"""


def rules(findings):
    return sorted({f.rule for f in findings})


class TestSourceRules:
    def test_clean_program_has_no_findings(self):
        assert lint_source(CLEAN) == []

    def test_unused_global(self):
        findings = lint_source("var ghost = 1\n" + CLEAN)
        assert "unused-global" in rules(findings)

    def test_write_only_global(self):
        src = """
var sink = 0

func main() {
    sink = 5
    return 0
}
"""
        assert "write-only-global" in rules(lint_source(src))

    def test_unused_local(self):
        src = """
func main() {
    var dead = 7
    return 0
}
"""
        assert "unused-local" in rules(lint_source(src))

    def test_unreachable_code(self):
        src = """
func main() {
    return 1
    return 2
}
"""
        assert "unreachable-code" in rules(lint_source(src))

    def test_zero_trip_loop(self):
        src = """
func main() {
    var i = 0
    while (0 > 1) { i = i + 1 }
    return i
}
"""
        assert "zero-trip-loop" in rules(lint_source(src))

    def test_non_terminating_loop(self):
        src = """
func main() {
    var i = 0
    while (1 > 0) { i = i + 1 }
    return i
}
"""
        assert "non-terminating-loop" in rules(lint_source(src))

    def test_parse_error_is_a_finding_not_an_exception(self):
        findings = lint_source("func main() {")
        assert rules(findings) == ["parse-error"]
        assert findings[0].line is not None

    def test_lex_error_is_a_finding_too(self):
        findings = lint_source("@@@")
        assert rules(findings) == ["parse-error"]

    def test_findings_format_with_location(self):
        finding = lint_source("var ghost = 1\n" + CLEAN)[0]
        text = finding.format()
        assert "unused-global" in text
        assert ":" in text


class TestProgramRules:
    def test_unreachable_blocks_flagged(self):
        program = assemble("""
        .text
        main:
            halt
        dead:
            addi t0, t0, 1
            j    dead
        """)
        assert "unreachable-code" in rules(lint_program(program))

    def test_clean_loop_program(self):
        program = assemble("""
        .text
        main:
            li   t0, 0
            li   t1, 10
        loop:
            addi t0, t0, 1
            blt  t0, t1, loop
            halt
        """)
        assert lint_program(program) == []


class TestSuiteIsClean:
    def test_all_registered_kernels_lint_clean(self):
        # the 14 kernels ship lint-clean; a new finding means a
        # kernel edit introduced dead code or a degenerate loop
        assert lint_workloads() == []


class TestPaths:
    def test_lint_paths_walks_rl_files(self, tmp_path):
        good = tmp_path / "good.rl"
        good.write_text(CLEAN)
        bad = tmp_path / "bad.rl"
        bad.write_text("var ghost = 1\n" + CLEAN)
        findings = lint_paths([str(tmp_path)])
        assert rules(findings) == ["unused-global"]
        assert findings[0].unit == str(bad)


class TestCli:
    def test_lint_cli_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.rl"
        bad.write_text("var ghost = 1\n" + CLEAN)
        assert main(["lint", str(bad)]) == 1
        assert "unused-global" in capsys.readouterr().out

        good = tmp_path / "good.rl"
        good.write_text(CLEAN)
        assert main(["lint", str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_cli_kernels_default(self, capsys):
        from repro.cli import main

        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out
