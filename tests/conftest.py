"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.vm.assembler import assemble
from repro.vm.machine import Machine
from repro.vm.trace import Trace


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_cache(tmp_path_factory):
    """Point the persistent trace cache at a throwaway directory.

    Keeps unit-test runs hermetic: nothing leaks into the repo's
    ``.repro-cache/`` and no stale entry from an earlier run can mask
    a behaviour change under test.
    """
    import os

    cache_dir = tmp_path_factory.mktemp("repro-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


def run_asm(source: str, max_instructions: int | None = 100_000) -> tuple[Machine, Trace]:
    """Assemble and run a snippet; returns the machine and its trace."""
    machine = Machine(assemble(source))
    trace = machine.run(max_instructions=max_instructions)
    return machine, trace


@pytest.fixture
def tiny_loop_trace() -> Trace:
    """A 10-iteration counting loop (useful for dataflow tests)."""
    _, trace = run_asm(
        """
        li   t0, 0
        li   t1, 10
    loop:
        addi t0, t0, 1
        blt  t0, t1, loop
        halt
        """
    )
    return trace


@pytest.fixture
def repetitive_trace() -> Trace:
    """Many identical passes over a small static table: high reuse."""
    _, trace = run_asm(
        """
        .data
    tab: .word 3 1 4 1 5 9 2 6
        .text
    main:
        li   s0, 20          # passes
    pass:
        la   t0, tab
        li   t1, 0
        li   t2, 8
    loop:
        add  t3, t0, t1
        lw   t4, 0(t3)
        mul  t5, t4, t4
        addi t1, t1, 1
        blt  t1, t2, loop
        subi s0, s0, 1
        bgtz s0, pass
        halt
        """
    )
    return trace
