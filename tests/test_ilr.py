"""Instruction-level reuse: reusability analysis and the finite buffer."""

import pytest

from repro.baselines.ilr import (
    InstructionReuseBuffer,
    ilr_reuse_plan,
    instruction_reusability,
)
from repro.isa.opcodes import Opcode
from repro.vm.trace import DynInst, Trace

from conftest import run_asm


def make_inst(pc, reads, writes=(), op=Opcode.ADD):
    return DynInst(pc, op, tuple(reads), tuple(writes), 1, pc + 1)


class TestReusability:
    def test_first_occurrence_not_reusable(self):
        result = instruction_reusability([make_inst(0, [(1, 5)])])
        assert result.flags == [False]
        assert result.reusable_count == 0

    def test_repeat_same_inputs_reusable(self):
        stream = [make_inst(0, [(1, 5)]), make_inst(0, [(1, 5)])]
        result = instruction_reusability(stream)
        assert result.flags == [False, True]
        assert result.percent_reusable == pytest.approx(50.0)

    def test_different_inputs_not_reusable(self):
        stream = [make_inst(0, [(1, 5)]), make_inst(0, [(1, 6)])]
        assert instruction_reusability(stream).flags == [False, True][:1] + [False]

    def test_history_accumulates_all_instances(self):
        # paper: ALL previous input tuples are kept, not just the last
        stream = [
            make_inst(0, [(1, 5)]),
            make_inst(0, [(1, 6)]),
            make_inst(0, [(1, 5)]),  # matches the first instance
        ]
        assert instruction_reusability(stream).flags == [False, False, True]

    def test_per_static_instruction_history(self):
        # same inputs at a different PC are a different static instruction
        stream = [make_inst(0, [(1, 5)]), make_inst(1, [(1, 5)])]
        assert instruction_reusability(stream).flags == [False, False]

    def test_memory_value_in_signature(self):
        # a load whose memory word changed is not reusable even if the
        # address matches
        load1 = make_inst(0, [(2, 100), (1000, 7)], [(1, 7)], op=Opcode.LW)
        load2 = make_inst(0, [(2, 100), (1000, 8)], [(1, 8)], op=Opcode.LW)
        assert instruction_reusability([load1, load2]).flags == [False, False]

    def test_address_in_signature(self):
        # same value loaded from a different address: not reusable
        load1 = make_inst(0, [(2, 100), (1100, 7)], [(1, 7)], op=Opcode.LW)
        load2 = make_inst(0, [(2, 200), (1200, 7)], [(1, 7)], op=Opcode.LW)
        assert instruction_reusability([load1, load2]).flags == [False, False]

    def test_counts(self):
        stream = [make_inst(0, [(1, 5)]) for _ in range(5)]
        result = instruction_reusability(stream)
        assert result.reusable_count == 4
        assert result.total_count == 5
        assert result.static_count == 1
        assert result.signature_count == 1

    def test_empty_stream(self):
        result = instruction_reusability([])
        assert result.percent_reusable == 0.0

    def test_second_pass_of_static_loop_fully_reusable(self, repetitive_trace):
        result = instruction_reusability(repetitive_trace)
        # the repeated passes make the bulk of the stream reusable
        assert result.percent_reusable > 70.0

    def test_accepts_trace_object(self, tiny_loop_trace):
        result = instruction_reusability(tiny_loop_trace)
        assert result.total_count == len(tiny_loop_trace)


class TestReusePlan:
    def test_plan_alignment_checked(self):
        with pytest.raises(ValueError):
            ilr_reuse_plan([make_inst(0, [(1, 5)])], [True, False], 1.0)

    def test_plan_marks_reusable_only(self):
        stream = [make_inst(0, [(1, 5)]), make_inst(0, [(1, 5)])]
        flags = instruction_reusability(stream).flags
        plan = ilr_reuse_plan(stream, flags, 1.0)
        assert plan[0] is None
        assert plan[1] is not None
        assert plan[1].inputs == (1,)
        assert plan[1].latency == 1.0
        assert not plan[1].fetch_free

    def test_plan_latency_forwarded(self):
        stream = [make_inst(0, [(1, 5)]), make_inst(0, [(1, 5)])]
        plan = ilr_reuse_plan(stream, [False, True], 3.0)
        assert plan[1].latency == 3.0


class TestInstructionReuseBuffer:
    def test_miss_then_hit(self):
        buf = InstructionReuseBuffer(total_entries=16, associativity=4)
        inst = make_inst(0, [(1, 5)])
        assert buf.access(inst) is False
        assert buf.access(inst) is True
        assert buf.hits == 1 and buf.misses == 1

    def test_probe_does_not_insert(self):
        buf = InstructionReuseBuffer(total_entries=16, associativity=4)
        inst = make_inst(0, [(1, 5)])
        assert buf.probe(inst) is False
        assert buf.probe(inst) is False

    def test_capacity_evicts_lru(self):
        buf = InstructionReuseBuffer(total_entries=2, associativity=2)
        # three distinct signatures mapping to the same (single) set
        a = make_inst(0, [(1, 1)])
        b = make_inst(0, [(1, 2)])
        c = make_inst(0, [(1, 3)])
        buf.access(a)
        buf.access(b)
        buf.access(c)  # evicts a
        assert buf.access(a) is False  # a was evicted
        assert buf.occupancy == 2

    def test_hit_refreshes_lru(self):
        buf = InstructionReuseBuffer(total_entries=2, associativity=2)
        a = make_inst(0, [(1, 1)])
        b = make_inst(0, [(1, 2)])
        c = make_inst(0, [(1, 3)])
        buf.access(a)
        buf.access(b)
        buf.access(a)  # refresh a; b becomes LRU
        buf.access(c)  # evicts b
        assert buf.access(a) is True

    def test_set_indexing_by_pc(self):
        buf = InstructionReuseBuffer(total_entries=8, associativity=2)
        # PCs 0 and 4 map to different sets (4 sets)
        buf.access(make_inst(0, [(1, 1)]))
        buf.access(make_inst(1, [(1, 1)]))
        assert buf.occupancy == 2

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            InstructionReuseBuffer(total_entries=0, associativity=1)
        with pytest.raises(ValueError):
            InstructionReuseBuffer(total_entries=10, associativity=3)

    def test_hit_rate(self):
        buf = InstructionReuseBuffer(total_entries=4, associativity=4)
        assert buf.hit_rate() == 0.0
        inst = make_inst(0, [(1, 5)])
        buf.access(inst)
        buf.access(inst)
        assert buf.hit_rate() == pytest.approx(0.5)

    def test_finite_buffer_upper_bounded_by_infinite(self, repetitive_trace):
        infinite = instruction_reusability(repetitive_trace)
        buf = InstructionReuseBuffer(total_entries=64, associativity=4)
        hits = sum(1 for d in repetitive_trace if buf.access(d))
        assert hits <= infinite.reusable_count
