"""The cycle-level pipeline model."""

import pytest

from repro.core.rtm.collector import ILRHeuristic
from repro.core.rtm.memory import RTMConfig
from repro.core.rtm.simulator import FiniteReuseSimulator
from repro.isa.opcodes import Opcode
from repro.pipeline import PipelineConfig, PipelineModel
from repro.pipeline.config import FU_PRESET_21164ish
from repro.vm.trace import DynInst

from conftest import run_asm


def make_inst(pc, reads, writes, latency=1, op=Opcode.ADD):
    return DynInst(pc, op, tuple(reads), tuple(writes), latency, pc + 1)


def chain(n, latency=1):
    return [make_inst(i, [(1, i)], [(1, i + 1)], latency) for i in range(n)]


def independent(n, latency=1, op=Opcode.ADD):
    return [make_inst(i, [], [(i + 2, 0)], latency, op) for i in range(n)]


WIDE = PipelineConfig(fetch_width=8, issue_width=8, commit_width=8, rob_size=128)


class TestConfig:
    def test_bad_widths(self):
        with pytest.raises(ValueError):
            PipelineConfig(fetch_width=0)
        with pytest.raises(ValueError):
            PipelineConfig(rob_size=0)

    def test_missing_fu_class(self):
        units = dict(FU_PRESET_21164ish)
        from repro.isa.opcodes import OpClass

        del units[OpClass.FP_DIV]
        with pytest.raises(ValueError):
            PipelineConfig(functional_units=units)


class TestBasicTiming:
    def test_empty_stream(self):
        result = PipelineModel().simulate([])
        assert result.committed_instructions == 0

    def test_serial_chain_bound_by_latency(self):
        result = PipelineModel(WIDE).simulate(chain(50, latency=1))
        # one instruction per cycle plus pipeline fill
        assert 50 <= result.total_cycles <= 60
        assert result.committed_instructions == 50

    def test_independent_instructions_reach_width(self):
        result = PipelineModel(WIDE).simulate(independent(400))
        # 8-wide machine with 2 INT ALUs: ALU issue is the bottleneck
        assert result.ipc == pytest.approx(2.0, rel=0.1)

    def test_fetch_width_bounds_ipc(self):
        narrow = PipelineConfig(fetch_width=1, issue_width=4, commit_width=4)
        result = PipelineModel(narrow).simulate(independent(200))
        assert result.ipc <= 1.0 + 1e-9

    def test_rob_size_limits_overlap(self):
        # long-latency leader blocks commit; a small ROB stalls fetch
        stream = [make_inst(0, [], [(1, 0)], 30, op=Opcode.FSQRT)]
        stream += independent(100)
        small = PipelineModel(PipelineConfig(rob_size=4)).simulate(stream)
        large = PipelineModel(PipelineConfig(rob_size=128)).simulate(stream)
        assert large.total_cycles < small.total_cycles

    def test_unpipelined_divides_serialise(self):
        divs = independent(8, latency=18, op=Opcode.FDIV)
        result = PipelineModel(WIDE).simulate(divs)
        # one FP divide unit, unpipelined: at least 8 * 18 cycles
        assert result.total_cycles >= 8 * 18

    def test_pipelined_fp_overlaps(self):
        muls = independent(8, latency=4, op=Opcode.FMUL)
        result = PipelineModel(WIDE).simulate(muls)
        # one FP multiply pipe, fully pipelined: ~8 + 4 cycles
        assert result.total_cycles <= 20

    def test_dependence_through_memory(self):
        store = make_inst(0, [], [(1000, 5)], 1, op=Opcode.SW)
        load = make_inst(1, [(1000, 5)], [(1, 5)], 2, op=Opcode.LW)
        user = make_inst(2, [(1, 5)], [(2, 6)], 1)
        result = PipelineModel(WIDE).simulate([store, load, user])
        assert result.total_cycles >= 5  # serial through memory

    def test_waw_not_confused(self):
        # two writers of loc 1; the reader depends on the *second*
        slow = make_inst(0, [], [(1, 0)], 30, op=Opcode.FSQRT)
        fast = make_inst(1, [], [(1, 1)], 1)
        reader = make_inst(2, [(1, 1)], [(2, 2)], 1)
        result = PipelineModel(WIDE).simulate([slow, fast, reader])
        # the reader need not wait for the 30-cycle writer to produce
        # its value, only in-order commit holds the machine: the slow
        # op still gates total cycles, but not more than that
        assert result.total_cycles <= 35

    def test_real_program_runs(self):
        _, trace = run_asm(
            "li t0, 0\nli t1, 50\nloop: addi t0, t0, 1\nblt t0, t1, loop\nhalt"
        )
        result = PipelineModel().simulate(trace)
        assert result.committed_instructions == len(trace)
        assert 0 < result.ipc <= 4.0


class TestReuseIntegration:
    @pytest.fixture(scope="class")
    def loopy(self):
        _, trace = run_asm(
            """
            .data
        tab: .word 3 1 4 1 5 9 2 6
            .text
        main:
            li   s0, 40
        pass:
            la   t0, tab
            li   t1, 0
            li   t2, 8
        loop:
            add  t3, t0, t1
            lw   t4, 0(t3)
            mul  t5, t4, t4
            sw   t5, 16(t3)
            addi t1, t1, 1
            blt  t1, t2, loop
            subi s0, s0, 1
            bgtz s0, pass
            halt
            """,
            max_instructions=4000,
        )
        return trace

    def _reuse(self, trace):
        sim = FiniteReuseSimulator(
            RTMConfig("t", 16, 4, 8), ILRHeuristic(expand=True)
        )
        return sim.run(trace)

    def test_reuse_commits_all_instructions(self, loopy):
        reuse = self._reuse(loopy)
        result = PipelineModel().simulate(loopy, reuse)
        assert result.committed_instructions == len(loopy)
        assert result.reused_instructions == reuse.reused_instructions
        assert result.reuse_events == reuse.reuse_events

    def test_reuse_speeds_up_the_pipeline(self, loopy):
        reuse = self._reuse(loopy)
        assert reuse.reused_instructions > 0
        model = PipelineModel()
        base = model.simulate(loopy)
        with_reuse = model.simulate(loopy, reuse)
        assert with_reuse.total_cycles < base.total_cycles

    def test_trace_slot_needs_no_functional_unit(self):
        # a reused trace of pure divides beats executing them
        divs = [
            make_inst(i, [(1, 0)], [(2, 1)], 18, op=Opcode.FDIV) for i in range(10)
        ]
        from repro.core.rtm.entry import RTMEntry
        from repro.core.rtm.simulator import FiniteReuseResult

        reuse = FiniteReuseResult(
            heuristic_name="x",
            rtm_name="x",
            total_instructions=10,
            reused_instructions=10,
            reuse_events=1,
            reused_ranges=[(0, 10)],
            reused_entries=[
                RTMEntry(
                    start_pc=0, length=10, inputs=((1, 0),), outputs=((2, 1),),
                    next_pc=10,
                )
            ],
        )
        model = PipelineModel(WIDE)
        base = model.simulate(divs)
        reused = model.simulate(divs, reuse)
        assert base.total_cycles >= 180
        assert reused.total_cycles <= 5
        assert reused.committed_instructions == 10
