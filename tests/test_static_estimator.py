"""The simulation-free reuse estimator: shape, invariants, no-VM law."""

from __future__ import annotations

import math

import pytest

from repro.exp.config import ExperimentConfig
from repro.static.estimator import (
    DEFAULT_PARAMS,
    ModelParams,
    _memory_ii,
    estimate_profile,
    estimate_profiles,
    estimate_source,
    estimate_workload,
)
from repro.workloads.base import FP_SUITE, INT_SUITE
from repro.workloads.generators import rl_loop_nest

ALL_KERNELS = tuple(FP_SUITE + INT_SUITE)

CONFIG = ExperimentConfig(max_instructions=8_000)


@pytest.fixture
def no_vm(monkeypatch):
    """Any VM execution during estimation is a test failure."""
    import repro.vm.fastmachine as fastmachine
    import repro.vm.machine as machine

    def boom(self, *args, **kwargs):
        raise AssertionError("static estimation must never execute")

    monkeypatch.setattr(machine.Machine, "run", boom)
    monkeypatch.setattr(fastmachine.FastMachine, "run", boom)


def assert_profile_sane(profile, config=CONFIG):
    assert profile.dynamic_count > 0
    assert 0.0 <= profile.percent_reusable <= 100.0
    assert profile.trace_count >= 0
    assert profile.avg_trace_size >= 0.0
    assert math.isfinite(profile.base_ipc_inf)
    assert math.isfinite(profile.base_ipc_win)
    assert 0.0 < profile.base_ipc_win <= profile.base_ipc_inf + 1e-9
    assert set(profile.ilr_speedup_inf) == set(config.reuse_latencies)
    assert set(profile.tlr_speedup_inf) == set(config.reuse_latencies)
    assert set(profile.tlr_speedup_win_prop) == set(config.proportional_ks)
    for mapping in (profile.ilr_speedup_inf, profile.ilr_speedup_win,
                    profile.tlr_speedup_inf, profile.tlr_speedup_win,
                    profile.tlr_speedup_win_prop):
        for value in mapping.values():
            assert math.isfinite(value)
            assert value >= 1.0


class TestZeroExecution:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_every_kernel_estimates_without_vm(self, name, no_vm):
        profile = estimate_profile(name, CONFIG)
        assert profile.name == name
        assert_profile_sane(profile)

    def test_profile_run_shape(self, no_vm):
        run = estimate_profiles(CONFIG)
        assert sorted(p.name for p in run) == sorted(ALL_KERNELS)

    def test_rl_source_estimates_without_vm(self, no_vm):
        estimate = estimate_source(
            rl_loop_nest(depth=2, trips=8), CONFIG, name="nest"
        )
        assert_profile_sane(estimate.profile)
        assert estimate.loop_table  # evidence travels with the profile


class TestTier0Dispatch:
    def test_run_profile_dispatches_to_estimator(self, no_vm):
        from repro.exp.runner import run_profile

        config = ExperimentConfig(max_instructions=8_000, tier0_static=True)
        via_runner = run_profile("li", config)
        direct = estimate_profile("li", config)
        assert via_runner == direct

    def test_tier0_static_is_semantic(self):
        static = ExperimentConfig(tier0_static=True)
        dynamic = ExperimentConfig(tier0_static=False)
        assert static.cache_key() != dynamic.cache_key()


class TestDeterminism:
    def test_same_input_same_profile(self):
        assert estimate_profile("gcc", CONFIG) == estimate_profile(
            "gcc", CONFIG
        )

    def test_budget_changes_profile(self):
        small = estimate_profile("li", ExperimentConfig(max_instructions=2_000))
        large = estimate_profile("li", ExperimentConfig(max_instructions=8_000))
        assert small.dynamic_count < large.dynamic_count


class TestModelStructure:
    def test_params_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMS.call_ilp = 1.0  # type: ignore[misc]

    def test_custom_params_flow_through(self):
        tight = ModelParams(ipc_cap=1.0)
        est = estimate_workload("compress", CONFIG, params=tight)
        assert est.profile.base_ipc_inf <= 1.0 + 1e-9

    def test_memory_recurrence_detected_in_rl_loops(self):
        # RL counters live in stack slots -> every loop is
        # memory-carried; hand assembly keeps them in registers
        from repro.lang.compiler import compile_source
        from repro.static.cfg import build_cfg
        from repro.vm.assembler import assemble

        rl_cfg = build_cfg(compile_source(rl_loop_nest(depth=1, trips=8)))
        assert _memory_ii(rl_cfg, rl_cfg.loops[0]) > 0.0

        asm_cfg = build_cfg(assemble("""
        .text
        main:
            li   t0, 0
            li   t1, 10
        loop:
            addi t0, t0, 1
            blt  t0, t1, loop
            halt
        """))
        assert _memory_ii(asm_cfg, asm_cfg.loops[0]) == 0.0

    def test_assumptions_are_strings(self):
        est = estimate_workload("li", CONFIG)
        assert all(isinstance(a, str) for a in est.assumptions)
