"""Front-end error hygiene: typed errors, never bare internals.

Feeding the RL front end truncated, garbage, or pathological sources
must always surface a :class:`repro.lang.SourceError` subclass with a
line (and, from the lexer, a column) — never a raw ``KeyError``,
``IndexError`` or ``RecursionError`` from the implementation.
"""

from __future__ import annotations

import pytest

from repro.lang import (
    CompileError,
    LexError,
    ParseError,
    SourceError,
    compile_source,
    parse,
)

TRUNCATED = [
    "func main() {",
    "func main() { var x = ",
    "func main() { return 1 + }",
    "var x =",
    "var arr[",
    "func main() { while (1 ",
    "func f(a, b",
]

GARBAGE = [
    "@@@!!",
    "func main() { return $ }",
    "var x = 0x",
    "var x = 1abc",
    "}{)(",
    "func 99() { }",
]


class TestTypedErrors:
    @pytest.mark.parametrize("source", TRUNCATED)
    def test_truncated_sources_raise_source_error(self, source):
        with pytest.raises(SourceError) as exc_info:
            compile_source(source)
        assert exc_info.value.line >= 1

    @pytest.mark.parametrize("source", GARBAGE)
    def test_garbage_sources_raise_source_error(self, source):
        with pytest.raises(SourceError) as exc_info:
            compile_source(source)
        assert exc_info.value.line >= 1

    def test_lex_error_carries_column(self):
        with pytest.raises(LexError) as exc_info:
            parse("  @")
        assert exc_info.value.line == 1
        assert exc_info.value.col == 3

    def test_parse_error_carries_position(self):
        with pytest.raises(ParseError) as exc_info:
            parse("var\nvar x = 1\nfunc")
        assert exc_info.value.line == 2
        assert exc_info.value.col == 1

    def test_error_message_contains_position(self):
        with pytest.raises(SourceError, match=r"line 2"):
            parse("var a = 1\n???")

    def test_hierarchy(self):
        # one except clause covers the whole front end
        for err in (LexError, ParseError, CompileError):
            assert issubclass(err, SourceError)
            assert issubclass(err, ValueError)


class TestNoBareInternals:
    def test_deep_parens_is_parse_error(self):
        source = "func main() { return " + "(" * 5000 + "1" + ")" * 5000 + " }"
        with pytest.raises(ParseError, match="too deep"):
            parse(source)

    def test_deep_binary_chain_is_typed(self):
        source = "func main() { return " + "1+" * 8000 + "1 }"
        try:
            compile_source(source)
        except SourceError:
            pass  # either side of the front end may reject it

    def test_compile_guard_converts_recursion(self):
        # a hand-built module with pathological nesting goes through
        # compile_module's guard, not the parser's
        from repro.lang.ast_nodes import (
            Binary,
            Function,
            IntLiteral,
            Module,
            Return,
        )
        from repro.lang.compiler import compile_module

        expr = IntLiteral(line=1, value=1)
        for _ in range(50_000):
            expr = Binary(line=1, op="+", left=expr,
                          right=IntLiteral(line=1, value=1))
        module = Module(
            globals=[],
            functions=[Function(line=1, name="main", params=[],
                                body=[Return(line=1, value=expr)])],
        )
        with pytest.raises(CompileError):
            compile_module(module)

    @pytest.mark.parametrize("source", TRUNCATED + GARBAGE)
    def test_never_bare_key_index_recursion(self, source):
        try:
            compile_source(source)
        except SourceError:
            pass
        # any other exception type propagates and fails the test
