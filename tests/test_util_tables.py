"""Table rendering."""

import pytest

from repro.util.tables import format_markdown_table, format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_title(self):
        out = format_table(["x"], [["y"]], title="My title")
        assert out.splitlines()[0] == "My title"

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159]])
        assert "3.14" in out and "3.14159" not in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_alignment_consistent(self):
        out = format_table(["col"], [["x"], ["longer"]])
        lines = out.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert len(out.splitlines()) == 2


class TestMarkdownTable:
    def test_structure(self):
        out = format_markdown_table(["a", "b"], [["1", "2"]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_float_cells(self):
        out = format_markdown_table(["x"], [[1.5]])
        assert "| 1.50 |" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [["1", "2"]])
