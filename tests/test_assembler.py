"""Assembler: syntax, label resolution, directives and pseudo-ops."""

import pytest

from repro.isa.opcodes import Opcode
from repro.vm.assembler import AssemblyError, assemble
from repro.vm.program import DATA_BASE


class TestBasics:
    def test_empty_program(self):
        prog = assemble("")
        assert len(prog) == 0

    def test_comments_ignored(self):
        prog = assemble("# full line\n  nop  # trailing\n ; alt comment\n")
        assert len(prog) == 1
        assert prog.instructions[0].op is Opcode.NOP

    def test_blank_lines(self):
        prog = assemble("\n\n  nop\n\n")
        assert len(prog) == 1

    def test_program_name(self):
        assert assemble("nop", name="xyz").name == "xyz"

    def test_line_numbers_recorded(self):
        prog = assemble("nop\nnop\nadd r1, r2, r3")
        assert prog.instructions[2].line == 3


class TestOperandForms:
    def test_r3(self):
        inst = assemble("add r1, r2, r3").instructions[0]
        assert (inst.op, inst.rd, inst.rs1, inst.rs2) == (Opcode.ADD, 1, 2, 3)

    def test_r2i(self):
        inst = assemble("addi r1, r2, -5").instructions[0]
        assert inst.imm == -5

    def test_hex_immediate(self):
        assert assemble("li r1, 0xff").instructions[0].imm == 255

    def test_char_immediate(self):
        assert assemble("li r1, 'a'").instructions[0].imm == ord("a")

    def test_escaped_char_immediate(self):
        assert assemble("li r1, '\\n'").instructions[0].imm == ord("\n")

    def test_mov(self):
        inst = assemble("mov r4, r5").instructions[0]
        assert (inst.op, inst.rd, inst.rs1) == (Opcode.MOV, 4, 5)

    def test_load_offset_base(self):
        inst = assemble("lw r1, 4(r2)").instructions[0]
        assert (inst.op, inst.rd, inst.rs1, inst.imm) == (Opcode.LW, 1, 2, 4)

    def test_load_bare_base(self):
        inst = assemble("lw r1, (r2)").instructions[0]
        assert inst.imm == 0 and inst.rs1 == 2

    def test_store_fields(self):
        inst = assemble("sw r7, -2(r8)").instructions[0]
        assert (inst.op, inst.rs2, inst.rs1, inst.imm) == (Opcode.SW, 7, 8, -2)

    def test_load_data_label(self):
        prog = assemble(".data\nv: .word 42\n.text\nlw r1, v")
        inst = prog.instructions[0]
        assert inst.rs1 == 0 and inst.imm == DATA_BASE

    def test_load_label_offset_with_base(self):
        prog = assemble(".data\nv: .word 1 2\n.text\nlw r1, v(r3)")
        inst = prog.instructions[0]
        assert inst.rs1 == 3 and inst.imm == DATA_BASE

    def test_fp_forms(self):
        prog = assemble("fadd f1, f2, f3\nfli f0, 1.5\nfsqrt f4, f5")
        assert prog.instructions[0].op is Opcode.FADD
        assert prog.instructions[1].imm == pytest.approx(1.5)
        assert prog.instructions[2].op is Opcode.FSQRT

    def test_fp_compare_into_int(self):
        inst = assemble("flt r1, f2, f3").instructions[0]
        assert (inst.rd, inst.rs1, inst.rs2) == (1, 2, 3)

    def test_conversions(self):
        prog = assemble("cvtif f1, r2\ncvtfi r3, f4")
        assert prog.instructions[0].op is Opcode.CVTIF
        assert prog.instructions[1].op is Opcode.CVTFI

    def test_register_kind_mismatch(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, f2, r3")
        with pytest.raises(AssemblyError):
            assemble("fadd f1, r2, f3")


class TestLabelsAndControl:
    def test_branch_to_label(self):
        prog = assemble("top: nop\nbeq r1, r2, top")
        assert prog.instructions[1].imm == 0

    def test_forward_reference(self):
        prog = assemble("j end\nnop\nend: halt")
        assert prog.instructions[0].imm == 2

    def test_label_on_own_line(self):
        prog = assemble("lbl:\n  nop\n  j lbl")
        assert prog.text_labels["lbl"] == 0

    def test_multiple_labels_one_target(self):
        prog = assemble("a: b: nop")
        assert prog.text_labels["a"] == prog.text_labels["b"] == 0

    def test_jal_default_link(self):
        inst = assemble("f: jal f").instructions[0]
        assert inst.rd == 31  # ra

    def test_jal_explicit_link(self):
        inst = assemble("f: jal r5, f").instructions[0]
        assert inst.rd == 5

    def test_jr(self):
        inst = assemble("jr ra").instructions[0]
        assert inst.op is Opcode.JR and inst.rs1 == 31

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("x: nop\nx: nop")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError):
            assemble("j nowhere")

    def test_main_label_sets_entry(self):
        prog = assemble("nop\nmain: halt")
        assert prog.text_labels["main"] == 1


class TestDirectives:
    def test_word_values(self):
        prog = assemble(".data\nv: .word 1 2 3")
        assert [prog.data[DATA_BASE + i] for i in range(3)] == [1, 2, 3]

    def test_float_values(self):
        prog = assemble(".data\nf: .float 0.5 1.5")
        assert prog.data[DATA_BASE] == pytest.approx(0.5)

    def test_space_zero_fill(self):
        prog = assemble(".data\nbuf: .space 4")
        assert all(prog.data[DATA_BASE + i] == 0 for i in range(4))

    def test_consecutive_allocations(self):
        prog = assemble(".data\na: .word 1\nb: .word 2")
        assert prog.data_labels["b"] == prog.data_labels["a"] + 1

    def test_asciiz(self):
        prog = assemble('.data\ns: .asciiz "hi"')
        base = prog.data_labels["s"]
        assert prog.data[base] == ord("h")
        assert prog.data[base + 2] == 0

    def test_word_outside_data_raises(self):
        with pytest.raises(AssemblyError):
            assemble(".word 1")

    def test_negative_space_raises(self):
        with pytest.raises(AssemblyError):
            assemble(".data\nb: .space -1")

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError):
            assemble(".bogus 1")

    def test_text_after_data(self):
        prog = assemble(".data\nv: .word 9\n.text\nlw r1, v\nhalt")
        assert len(prog) == 2


class TestPseudoOps:
    def test_la(self):
        prog = assemble(".data\nv: .word 0\n.text\nla r1, v")
        inst = prog.instructions[0]
        assert inst.op is Opcode.LI and inst.imm == DATA_BASE

    def test_subi(self):
        inst = assemble("subi r1, r2, 5").instructions[0]
        assert inst.op is Opcode.ADDI and inst.imm == -5

    def test_branch_zero_forms(self):
        prog = assemble("t: beqz r1, t\nbnez r2, t\nbltz r3, t\nbgtz r4, t")
        ops = [i.op for i in prog.instructions]
        assert ops == [Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGT]
        assert all(i.rs2 == 0 for i in prog.instructions)

    def test_call_ret(self):
        prog = assemble("f: call f\nret")
        assert prog.instructions[0].op is Opcode.JAL
        assert prog.instructions[0].rd == 31
        assert prog.instructions[1].op is Opcode.JR

    def test_push_expands_to_two(self):
        prog = assemble("push r5")
        assert len(prog) == 2
        assert prog.instructions[0].op is Opcode.ADDI
        assert prog.instructions[1].op is Opcode.SW

    def test_pop_expands_to_two(self):
        prog = assemble("pop r5")
        assert prog.instructions[0].op is Opcode.LW
        assert prog.instructions[1].op is Opcode.ADDI

    def test_label_binds_to_expansion_start(self):
        prog = assemble("loop: push r1\nj loop")
        assert prog.text_labels["loop"] == 0
        assert prog.instructions[2].imm == 0

    def test_not_neg(self):
        prog = assemble("not r1, r2\nneg r3, r4")
        assert prog.instructions[0].op is Opcode.XORI
        assert prog.instructions[0].imm == -1
        assert prog.instructions[1].op is Opcode.SUB
        assert prog.instructions[1].rs1 == 0


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2")

    def test_bad_immediate(self):
        with pytest.raises(AssemblyError):
            assemble("li r1, 12abc")

    def test_error_reports_line(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble("nop\nbogus r1")

    def test_instruction_in_data_section(self):
        with pytest.raises(AssemblyError):
            assemble(".data\nadd r1, r2, r3")
