"""Per-operation-class reusability breakdown."""

import pytest

from repro.baselines.ilr import instruction_reusability, reusability_by_class

from conftest import run_asm


class TestReusabilityByClass:
    def test_totals_partition_the_stream(self, repetitive_trace):
        breakdown = reusability_by_class(repetitive_trace)
        assert sum(total for _h, total, _p in breakdown.values()) == len(
            repetitive_trace
        )

    def test_hits_sum_to_reusable_count(self, repetitive_trace):
        reuse = instruction_reusability(repetitive_trace)
        breakdown = reusability_by_class(repetitive_trace, reuse.flags)
        assert sum(h for h, _t, _p in breakdown.values()) == reuse.reusable_count

    def test_percentages_consistent(self, repetitive_trace):
        for hits, total, pct in reusability_by_class(repetitive_trace).values():
            assert pct == pytest.approx(100.0 * hits / total)
            assert 0 <= hits <= total

    def test_flags_length_checked(self, tiny_loop_trace):
        with pytest.raises(ValueError):
            reusability_by_class(tiny_loop_trace, [True])

    def test_memory_class_present_for_memory_code(self):
        _, trace = run_asm(
            "li r1, 100\nli r2, 3\nloop: sw r2, 0(r1)\nlw r3, 0(r1)\n"
            "subi r2, r2, 1\nbgtz r2, loop\nhalt"
        )
        breakdown = reusability_by_class(trace)
        assert "LOAD" in breakdown and "STORE" in breakdown

    def test_evolving_values_not_reusable(self):
        # the loop counter's values never repeat: INT_ALU reuse is low
        _, trace = run_asm(
            "li r1, 0\nloop: addi r1, r1, 1\nslti r2, r1, 50\nbnez r2, loop\nhalt"
        )
        breakdown = reusability_by_class(trace)
        hits, total, pct = breakdown["INT_ALU"]
        assert pct < 10.0
