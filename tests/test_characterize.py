"""Workload characterisation."""

import pytest

from repro.isa.opcodes import Opcode
from repro.vm.trace import DynInst
from repro.workloads.base import FP_SUITE, INT_SUITE
from repro.workloads.characterize import (
    WorkloadCharacter,
    characterize,
    suite_characterization,
)

from conftest import run_asm


def make_inst(pc, op, reads=(), writes=(), next_pc=None):
    return DynInst(pc, op, tuple(reads), tuple(writes), 1,
                   pc + 1 if next_pc is None else next_pc)


class TestCharacterize:
    def test_empty(self):
        ch = characterize([])
        assert ch.dynamic_count == 0 and ch.memory_footprint == 0

    def test_class_fractions_sum_sensibly(self):
        _, trace = run_asm(
            "li r1, 4\nlw r2, 0(r1)\nsw r2, 1(r1)\nbeqz r2, done\ndone: halt"
        )
        ch = characterize(trace)
        total = (ch.int_alu_frac + ch.mul_div_frac + ch.load_frac
                 + ch.store_frac + ch.branch_frac + ch.fp_frac)
        assert total <= 1.0 + 1e-9
        assert ch.load_frac == pytest.approx(1 / 5)
        assert ch.store_frac == pytest.approx(1 / 5)

    def test_branch_taken_rate(self):
        stream = [
            make_inst(0, Opcode.BEQ, next_pc=5),  # taken
            make_inst(5, Opcode.BNE, next_pc=6),  # not taken
        ]
        ch = characterize(stream)
        assert ch.branch_taken_rate == pytest.approx(0.5)

    def test_memory_footprint_counts_distinct_words(self):
        from repro.isa.registers import loc_mem

        stream = [
            make_inst(0, Opcode.SW, writes=((loc_mem(10), 1),)),
            make_inst(1, Opcode.SW, writes=((loc_mem(10), 2),)),
            make_inst(2, Opcode.LW, reads=((loc_mem(11), 0),), writes=((1, 0),)),
        ]
        assert characterize(stream).memory_footprint == 2

    def test_basic_block_length(self):
        # 4 instructions, one taken transfer -> avg block length 4
        stream = [
            make_inst(0, Opcode.ADD),
            make_inst(1, Opcode.ADD),
            make_inst(2, Opcode.ADD),
            make_inst(3, Opcode.J, next_pc=0),
        ]
        assert characterize(stream).avg_basic_block == pytest.approx(4.0)

    def test_top10_share_bounds(self, repetitive_trace):
        ch = characterize(repetitive_trace)
        assert 0.0 < ch.top10_pc_share <= 1.0

    def test_static_count(self, tiny_loop_trace):
        ch = characterize(tiny_loop_trace)
        assert ch.static_count == len(tiny_loop_trace.static_pcs())


class TestSuiteCharacterization:
    def test_table_covers_suite(self):
        fig = suite_characterization(["compress", "applu"], max_instructions=2000)
        assert [row[0] for row in fig.rows] == ["compress", "applu"]
        assert fig.value("applu", "suite") == "FP"

    def test_fp_suite_has_fp_work(self):
        fig = suite_characterization(FP_SUITE, max_instructions=2000)
        for row in fig.rows:
            assert row[fig.headers.index("fp%")] > 10.0, row[0]

    def test_int_suite_has_no_fp(self):
        fig = suite_characterization(INT_SUITE, max_instructions=2000)
        for row in fig.rows:
            assert row[fig.headers.index("fp%")] == 0.0, row[0]
