"""The realistic finite-table engine, end to end."""

import pytest

from repro.core.rtm.collector import FixedLengthHeuristic, ILRHeuristic
from repro.core.rtm.memory import RTM_PRESETS, RTMConfig
from repro.core.rtm.simulator import FiniteReuseSimulator
from repro.baselines.ilr import instruction_reusability

from conftest import run_asm


def small_rtm(name="t", num_sets=8, ways=4, traces_per_pc=4):
    return RTMConfig(name, num_sets=num_sets, ways=ways, traces_per_pc=traces_per_pc)


@pytest.fixture(scope="module")
def loopy_trace():
    _, trace = run_asm(
        """
        .data
    tab: .word 3 1 4 1 5 9 2 6
        .text
    main:
        li   s0, 30
    pass:
        la   t0, tab
        li   t1, 0
        li   t2, 8
    loop:
        add  t3, t0, t1
        lw   t4, 0(t3)
        mul  t5, t4, t4
        sw   t5, 16(t3)
        addi t1, t1, 1
        blt  t1, t2, loop
        subi s0, s0, 1
        bgtz s0, pass
        halt
        """,
        max_instructions=3000,
    )
    return trace


class TestFiniteReuseSimulator:
    def test_ilr_ne_finds_reuse(self, loopy_trace):
        sim = FiniteReuseSimulator(small_rtm(), ILRHeuristic(expand=False))
        result = sim.run(loopy_trace)
        assert result.reuse_events > 0
        assert 0 < result.percent_reused <= 100.0
        assert result.avg_reused_trace_size >= 1.0

    def test_fixed_heuristic_finds_reuse(self, loopy_trace):
        sim = FiniteReuseSimulator(small_rtm(), FixedLengthHeuristic(4))
        result = sim.run(loopy_trace)
        assert result.reuse_events > 0

    def test_validation_is_on_by_default(self, loopy_trace):
        # validate=True checks every reuse against the actual stream;
        # a clean run means collection recorded complete live-in sets
        sim = FiniteReuseSimulator(small_rtm(), ILRHeuristic(expand=True))
        sim.run(loopy_trace)  # must not raise TraceMismatchError

    def test_reused_ranges_disjoint_and_ordered(self, loopy_trace):
        sim = FiniteReuseSimulator(small_rtm(), ILRHeuristic(expand=True))
        result = sim.run(loopy_trace)
        prev_stop = 0
        for start, stop in result.reused_ranges:
            assert start >= prev_stop
            assert stop > start
            prev_stop = stop

    def test_reuse_accounting_consistent(self, loopy_trace):
        sim = FiniteReuseSimulator(small_rtm(), ILRHeuristic(expand=False))
        result = sim.run(loopy_trace)
        assert result.reused_instructions == sum(
            stop - start for start, stop in result.reused_ranges
        )
        assert result.reuse_events == len(result.reused_ranges)
        assert result.total_instructions == len(loopy_trace)

    def test_finite_bounded_by_infinite_limit(self, loopy_trace):
        # a finite engine can never reuse more instructions than the
        # infinite-history instruction-level limit (Theorem 1)
        limit = instruction_reusability(loopy_trace)
        sim = FiniteReuseSimulator(small_rtm(), ILRHeuristic(expand=True))
        result = sim.run(loopy_trace)
        assert result.reused_instructions <= limit.reusable_count

    def test_bigger_rtm_never_worse_on_thrashing_workload(self, loopy_trace):
        tiny = FiniteReuseSimulator(
            small_rtm(num_sets=1, ways=1, traces_per_pc=1), ILRHeuristic()
        ).run(loopy_trace)
        big = FiniteReuseSimulator(
            small_rtm(num_sets=16, ways=8, traces_per_pc=8), ILRHeuristic()
        ).run(loopy_trace)
        assert big.reused_instructions >= tiny.reused_instructions

    def test_expansion_grows_average_trace(self, loopy_trace):
        ne = FiniteReuseSimulator(small_rtm(), ILRHeuristic(expand=False)).run(
            loopy_trace
        )
        exp = FiniteReuseSimulator(small_rtm(), ILRHeuristic(expand=True)).run(
            loopy_trace
        )
        assert exp.avg_reused_trace_size >= ne.avg_reused_trace_size

    def test_fixed_length_trace_size_grows_with_n(self, loopy_trace):
        small_n = FiniteReuseSimulator(small_rtm(), FixedLengthHeuristic(1)).run(
            loopy_trace
        )
        large_n = FiniteReuseSimulator(small_rtm(), FixedLengthHeuristic(6)).run(
            loopy_trace
        )
        if small_n.reuse_events and large_n.reuse_events:
            assert large_n.avg_reused_trace_size > small_n.avg_reused_trace_size

    def test_io_limits_respected_in_entries(self, loopy_trace):
        from repro.core.rtm.memory import ReuseTraceMemory

        # run with very tight limits and check the reused trace sizes
        from repro.core.traces import TraceLimits

        sim = FiniteReuseSimulator(
            small_rtm(),
            ILRHeuristic(expand=True),
            limits=TraceLimits(max_reg_inputs=2, max_mem_inputs=1,
                               max_reg_outputs=2, max_mem_outputs=1),
        )
        result = sim.run(loopy_trace)  # must not raise
        assert result.total_instructions == len(loopy_trace)

    def test_empty_stream(self):
        sim = FiniteReuseSimulator(small_rtm(), ILRHeuristic())
        result = sim.run([])
        assert result.total_instructions == 0
        assert result.percent_reused == 0.0
        assert result.avg_reused_trace_size == 0.0

    def test_result_labels(self, loopy_trace):
        sim = FiniteReuseSimulator(RTM_PRESETS["512"], FixedLengthHeuristic(2))
        result = sim.run(loopy_trace)
        assert result.heuristic_name == "I2 EXP"
        assert result.rtm_name == "512"

    def test_paper_presets_run(self, loopy_trace):
        for name in ("512", "4K"):
            result = FiniteReuseSimulator(
                RTM_PRESETS[name], ILRHeuristic(expand=True)
            ).run(loopy_trace)
            assert result.total_instructions == len(loopy_trace)
