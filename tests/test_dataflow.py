"""Dataflow timing model: hand-computed cases and reuse plans."""

import pytest

from repro.dataflow.model import DataflowModel, ReusePoint, TimingResult
from repro.isa.opcodes import Opcode
from repro.vm.trace import DynInst, Trace


def make_inst(pc, reads, writes, latency, op=Opcode.ADD):
    return DynInst(
        pc=pc,
        op=op,
        reads=tuple(reads),
        writes=tuple(writes),
        latency=latency,
        next_pc=pc + 1,
    )


def chain(n, latency=1, loc=1):
    """n serially dependent instructions through one register."""
    return [
        make_inst(i, [(loc, i)], [(loc, i + 1)], latency) for i in range(n)
    ]


def independent(n, latency=1):
    """n mutually independent instructions (distinct locations)."""
    return [make_inst(i, [], [(i + 1, 0)], latency) for i in range(n)]


class TestInfiniteWindow:
    def test_empty_stream(self):
        result = DataflowModel().analyze(Trace())
        assert result.instruction_count == 0 and result.ipc == 0.0

    def test_single_instruction(self):
        result = DataflowModel().analyze([make_inst(0, [], [(1, 0)], 3)])
        assert result.total_cycles == 3

    def test_serial_chain_sums_latencies(self):
        result = DataflowModel().analyze(chain(10, latency=2))
        assert result.total_cycles == 20
        assert result.ipc == pytest.approx(0.5)

    def test_independent_instructions_overlap(self):
        result = DataflowModel().analyze(independent(100, latency=4))
        assert result.total_cycles == 4
        assert result.ipc == pytest.approx(25.0)

    def test_mixed_producers_max(self):
        # c = a + b where a completes at 2, b at 8
        stream = [
            make_inst(0, [], [(1, 0)], 2),
            make_inst(1, [], [(2, 0)], 8),
            make_inst(2, [(1, 0), (2, 0)], [(3, 0)], 1),
        ]
        result = DataflowModel().analyze(stream)
        assert result.total_cycles == 9

    def test_memory_dependence_tracked(self):
        mem = 1000
        stream = [
            make_inst(0, [], [(mem, 5)], 4, op=Opcode.SW),
            make_inst(1, [(mem, 5)], [(1, 5)], 2, op=Opcode.LW),
        ]
        result = DataflowModel().analyze(stream)
        assert result.total_cycles == 6

    def test_war_and_waw_do_not_serialise(self):
        # write after read / write after write: only true deps count
        stream = [
            make_inst(0, [], [(1, 0)], 10),
            make_inst(1, [(1, 0)], [(2, 0)], 1),  # true dep: ends 11
            make_inst(2, [], [(1, 1)], 1),  # WAW on loc 1: free to finish at 1
            make_inst(3, [], [(2, 1)], 1),  # WAW on loc 2
        ]
        result = DataflowModel().analyze(stream)
        assert result.total_cycles == 11


class TestFiniteWindow:
    def test_window_limits_overlap(self):
        # 100 independent 4-cycle instructions, window of 10: roughly
        # one window-full can be in flight at a time
        inf = DataflowModel(None).analyze(independent(100, latency=4))
        win = DataflowModel(10).analyze(independent(100, latency=4))
        assert win.total_cycles > inf.total_cycles

    def test_window_no_effect_on_serial_code(self):
        inf = DataflowModel(None).analyze(chain(50, latency=2))
        win = DataflowModel(4).analyze(chain(50, latency=2))
        assert win.total_cycles == inf.total_cycles

    def test_huge_window_equals_infinite(self):
        stream = independent(50, latency=3)
        inf = DataflowModel(None).analyze(stream)
        win = DataflowModel(1_000).analyze(stream)
        assert win.total_cycles == inf.total_cycles

    def test_window_graduation_math(self):
        # 4 independent 10-cycle instructions, window 2: i2 waits for
        # grad(i0)=10, i3 waits for grad(i1)=10 -> both end at 20
        win = DataflowModel(2).analyze(independent(4, latency=10))
        assert win.total_cycles == 20

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DataflowModel(0)
        with pytest.raises(ValueError):
            DataflowModel(-5)

    def test_ipc_ordering(self, tiny_loop_trace):
        inf = DataflowModel(None).analyze(tiny_loop_trace)
        win = DataflowModel(256).analyze(tiny_loop_trace)
        assert win.ipc <= inf.ipc + 1e-9


class TestReusePlans:
    def test_plan_length_mismatch(self):
        with pytest.raises(ValueError):
            DataflowModel().analyze(chain(3), reuse_plan=[None])

    def test_ilr_reuse_shortens_latency(self):
        # serial chain of 8-cycle ops, every link reusable at 1 cycle
        stream = chain(10, latency=8)
        plan = [ReusePoint(inputs=(1,), latency=1.0) for _ in stream]
        base = DataflowModel().analyze(stream)
        reused = DataflowModel().analyze(stream, plan)
        assert base.total_cycles == 80
        assert reused.total_cycles == 10
        assert reused.reused_count == 10

    def test_oracle_never_hurts(self):
        # reuse latency worse than execution: oracle keeps normal time
        stream = chain(10, latency=1)
        plan = [ReusePoint(inputs=(1,), latency=5.0) for _ in stream]
        base = DataflowModel().analyze(stream)
        reused = DataflowModel().analyze(stream, plan)
        assert reused.total_cycles == base.total_cycles
        assert reused.reused_count == 0

    def test_trace_reuse_collapses_chain(self):
        # the paper's headline effect: a dependent chain completes all
        # at once, exceeding the dataflow limit
        stream = chain(100, latency=1)
        point = ReusePoint(inputs=(1,), latency=1.0, fetch_free=True)
        plan = [point] * len(stream)
        base = DataflowModel().analyze(stream)
        reused = DataflowModel().analyze(stream, plan)
        assert base.total_cycles == 100
        assert reused.total_cycles == 1

    def test_two_spans_telescope(self):
        # consecutive reused traces chain through their live-ins
        stream = chain(100, latency=1)
        p1 = ReusePoint(inputs=(1,), latency=1.0, fetch_free=True)
        p2 = ReusePoint(inputs=(1,), latency=1.0, fetch_free=True)
        plan = [p1] * 50 + [p2] * 50
        reused = DataflowModel().analyze(stream, plan)
        assert reused.total_cycles == 2

    def test_fetch_free_ignores_window(self):
        # 40 independent 4-cycle ops in a tiny window, all in one
        # reusable trace with no live-ins: everything done in 1 cycle
        stream = independent(40, latency=4)
        point = ReusePoint(inputs=(), latency=1.0, fetch_free=True)
        base = DataflowModel(4).analyze(stream)
        reused = DataflowModel(4).analyze(stream, [point] * 40)
        assert reused.total_cycles == 1
        assert base.total_cycles > 10

    def test_fetch_free_frees_window_for_others(self):
        # reused trace instructions do not occupy window slots, so the
        # trailing non-reused code is not stalled behind them
        stream = independent(20, latency=4) + independent(20, latency=4)
        point = ReusePoint(inputs=(), latency=1.0, fetch_free=True)
        plan = [point] * 20 + [None] * 20
        small_window = DataflowModel(4)
        base = small_window.analyze(stream)
        reused = small_window.analyze(stream, plan)
        assert reused.total_cycles < base.total_cycles

    def test_reuse_gate_evaluated_at_trace_entry(self):
        # intra-trace writes must not push the trace's own reuse gate
        stream = chain(10, latency=3)
        point = ReusePoint(inputs=(1,), latency=2.0, fetch_free=True)
        reused = DataflowModel().analyze(stream, [point] * 10)
        assert reused.total_cycles == 2

    def test_reuse_gated_by_live_in_producer(self):
        # producer of the trace's live-in finishes at 10; trace adds 1
        producer = make_inst(0, [], [(1, 0)], 10)
        body = chain(5, latency=1)
        stream = [producer] + body
        point = ReusePoint(inputs=(1,), latency=1.0, fetch_free=True)
        plan = [None] + [point] * 5
        reused = DataflowModel().analyze(stream, plan)
        assert reused.total_cycles == 11


class TestTimingResult:
    def test_speedup(self):
        a = TimingResult(instruction_count=10, total_cycles=100.0, window_size=None)
        b = TimingResult(instruction_count=10, total_cycles=50.0, window_size=None)
        assert b.speedup_over(a) == pytest.approx(2.0)

    def test_degenerate_speedup_raises(self):
        bad = TimingResult(instruction_count=0, total_cycles=0.0, window_size=None)
        good = TimingResult(instruction_count=1, total_cycles=1.0, window_size=None)
        with pytest.raises(ValueError):
            bad.speedup_over(good)

    def test_ipc(self):
        r = TimingResult(instruction_count=30, total_cycles=10.0, window_size=256)
        assert r.ipc == pytest.approx(3.0)
