"""Experiment layer: profiles, figure assembly, reporting."""

import pytest

from repro.exp.config import ExperimentConfig
from repro.exp.figures import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    trace_io_summary,
)
from repro.exp.report import render, render_markdown
from repro.exp.runner import collect_profiles, run_profile

SMALL = ExperimentConfig(
    max_instructions=3000,
    workloads=("hydro2d", "applu", "compress", "li"),
)


@pytest.fixture(scope="module")
def profiles():
    return collect_profiles(SMALL)


class TestRunner:
    def test_profile_fields(self):
        p = run_profile("compress", SMALL)
        assert p.name == "compress" and p.suite == "INT"
        assert p.dynamic_count == 3000
        assert 0 <= p.percent_reusable <= 100
        assert p.base_ipc_inf >= p.base_ipc_win - 1e-9
        assert set(p.ilr_speedup_inf) == {1, 2, 3, 4}
        assert set(p.tlr_speedup_win_prop) == set(SMALL.proportional_ks)
        assert p.io_stats is not None

    def test_speedups_at_least_one(self, profiles):
        for p in profiles:
            for d in (p.ilr_speedup_inf, p.ilr_speedup_win,
                      p.tlr_speedup_inf, p.tlr_speedup_win):
                for v in d.values():
                    assert v >= 1.0 - 1e-9

    def test_collect_order_matches_config(self, profiles):
        assert [p.name for p in profiles] == list(SMALL.workloads)

    def test_config_suite_helpers(self):
        assert SMALL.fp_names() == ["hydro2d", "applu"]
        assert SMALL.int_names() == ["compress", "li"]


class TestFigures:
    def test_figure3_shape(self, profiles):
        fig = figure3(profiles)
        labels = [row[0] for row in fig.rows]
        assert "AVG_FP" in labels and "AVG_INT" in labels and "AVERAGE" in labels
        assert 0 <= fig.value("AVERAGE", "reusable_pct") <= 100

    def test_figure3_fp_first_ordering(self, profiles):
        fig = figure3(profiles)
        labels = [row[0] for row in fig.rows]
        assert labels.index("hydro2d") < labels.index("compress")

    def test_figure4_latency_sweep_rows(self, profiles):
        fig = figure4(profiles, SMALL)
        labels = [row[0] for row in fig.rows]
        for latency in (1, 2, 3, 4):
            assert f"AVG@latency={latency}" in labels

    def test_figure4_sweep_monotone(self, profiles):
        fig = figure4(profiles, SMALL)
        sweep = [
            fig.value(f"AVG@latency={lat}", "speedup") for lat in (1, 2, 3, 4)
        ]
        assert sweep == sorted(sweep, reverse=True)

    def test_figure5_uses_window(self, profiles):
        fig5 = figure5(profiles, SMALL)
        assert fig5.value("AVERAGE", "speedup") >= 1.0 - 1e-9

    def test_figure6_columns(self, profiles):
        fig = figure6(profiles)
        assert fig.headers == ["program", "speedup_inf", "speedup_w256"]
        avg = fig.row_for("AVERAGE")
        assert avg[1] >= 1.0 - 1e-9 and avg[2] >= 1.0 - 1e-9

    def test_tlr_beats_ilr_on_average(self, profiles):
        """The paper's core claim, at the averages level."""
        fig4 = figure4(profiles, SMALL)
        fig6 = figure6(profiles)
        assert fig6.value("AVERAGE", "speedup_w256") >= fig4.value(
            "AVG@latency=1", "speedup"
        )

    def test_figure7_positive_sizes(self, profiles):
        fig = figure7(profiles)
        for row in fig.rows:
            assert row[1] >= 0

    def test_figure8_series(self, profiles):
        fig = figure8(profiles, SMALL)
        labels = [row[0] for row in fig.rows]
        assert "constant@1cyc" in labels
        assert "proportional@K=1/16" in labels
        assert len(fig.rows) == 4 + 6

    def test_figure8_proportional_monotone(self, profiles):
        fig = figure8(profiles, SMALL)
        ks = [32, 16, 8, 4, 2, 1]
        series = [fig.value(f"proportional@K=1/{k}", "speedup") for k in ks]
        assert series == sorted(series, reverse=True)

    def test_trace_io_summary(self, profiles):
        fig = trace_io_summary(profiles)
        avg = fig.row_for("AVERAGE")
        assert len(avg) == len(fig.headers)
        # reads per reused instruction are far below one-per-instruction
        assert fig.value("AVERAGE", "reads_per_instr") < 2.0

    def test_value_errors(self, profiles):
        fig = figure3(profiles)
        with pytest.raises(KeyError):
            fig.row_for("nonexistent")


class TestFigure9:
    def test_small_grid(self):
        from repro.core.rtm.collector import FixedLengthHeuristic, ILRHeuristic

        cfg = ExperimentConfig(max_instructions=2000, workloads=("compress", "li"))
        fig = figure9(
            cfg,
            rtm_names=("512", "4K"),
            heuristics=[ILRHeuristic(expand=True), FixedLengthHeuristic(4)],
        )
        assert len(fig.rows) == 4
        for row in fig.rows:
            assert 0 <= row[2] <= 100  # reused_pct
            assert row[3] >= 0  # avg trace size

    def test_bigger_rtm_not_worse(self):
        from repro.core.rtm.collector import ILRHeuristic

        cfg = ExperimentConfig(max_instructions=4000, workloads=("compress",))
        fig = figure9(cfg, rtm_names=("512", "32K"), heuristics=[ILRHeuristic(True)])
        small = fig.rows[0][2]
        big = fig.rows[1][2]
        assert big >= small - 1.0  # allow tiny replacement noise


class TestReport:
    def test_render_text(self, profiles):
        text = render(figure3(profiles))
        assert "Figure 3" in text and "AVERAGE" in text

    def test_render_markdown(self, profiles):
        md = render_markdown(figure7(profiles))
        assert md.startswith("### ")
        assert "| program |" in md
