"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["analyze", "compress"])
        assert args.budget == 20_000 and args.window == 256


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "hydro2d" in out

    def test_run(self, capsys):
        assert main(["run", "li", "--budget", "500"]) == 0
        out = capsys.readouterr().out
        assert "500 dynamic instructions" in out
        assert "INT_ALU" in out

    def test_run_save_trace(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl.gz"
        assert main(["run", "li", "--budget", "300", "--save-trace", str(path)]) == 0
        from repro.vm.tracefile import load_trace

        assert len(load_trace(path)) == 300

    def test_analyze(self, capsys):
        assert main(["analyze", "compress", "--budget", "2000"]) == 0
        out = capsys.readouterr().out
        assert "reusable" in out
        assert "tlr_speedup" in out

    def test_rtm(self, capsys):
        assert main(["rtm", "li", "--budget", "1500", "--sizes", "512"]) == 0
        out = capsys.readouterr().out
        assert "ILR NE" in out and "invalidate" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "compress"]) == 0
        out = capsys.readouterr().out
        assert "0:" in out and "halt" in out

    def test_figures_small(self, capsys, monkeypatch):
        # shrink the suite for test speed
        import repro.cli as cli
        from repro.exp.config import ExperimentConfig

        original = cli.ExperimentConfig

        def tiny(max_instructions, **kwargs):
            return original(
                max_instructions=min(max_instructions, 1500),
                workloads=("compress", "applu"),
                **kwargs,
            )

        monkeypatch.setattr(cli, "ExperimentConfig", tiny)
        assert main(["figures", "--budget", "1500"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Figure 8" in out
