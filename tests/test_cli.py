"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["analyze", "compress"])
        assert args.budget == 20_000 and args.window == 256


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "hydro2d" in out

    def test_run(self, capsys):
        assert main(["run", "li", "--budget", "500"]) == 0
        out = capsys.readouterr().out
        assert "500 dynamic instructions" in out
        assert "INT_ALU" in out

    def test_run_save_trace(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl.gz"
        assert main(["run", "li", "--budget", "300", "--save-trace", str(path)]) == 0
        from repro.vm.tracefile import load_trace

        assert len(load_trace(path)) == 300

    def test_analyze(self, capsys):
        assert main(["analyze", "compress", "--budget", "2000"]) == 0
        out = capsys.readouterr().out
        assert "reusable" in out
        assert "tlr_speedup" in out

    def test_rtm(self, capsys):
        assert main(["rtm", "li", "--budget", "1500", "--sizes", "512"]) == 0
        out = capsys.readouterr().out
        assert "ILR NE" in out and "invalidate" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "compress"]) == 0
        out = capsys.readouterr().out
        assert "0:" in out and "halt" in out

    def test_figures_small(self, capsys, monkeypatch):
        # shrink the suite for test speed
        import repro.cli as cli
        from repro.exp.config import ExperimentConfig

        original = cli.ExperimentConfig

        def tiny(max_instructions, **kwargs):
            return original(
                max_instructions=min(max_instructions, 1500),
                workloads=("compress", "applu"),
                **kwargs,
            )

        monkeypatch.setattr(cli, "ExperimentConfig", tiny)
        assert main(["figures", "--budget", "1500"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Figure 8" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "li", "--budget", "800"]) == 0
        out = capsys.readouterr().out
        assert "li" in out and "bb_len" in out

    def test_obs_round_trip_after_figures(self, capsys, monkeypatch,
                                          tmp_path):
        import repro.cli as cli

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        original = cli.ExperimentConfig

        def tiny(max_instructions, **kwargs):
            return original(
                max_instructions=min(max_instructions, 1000),
                workloads=("li",),
                **kwargs,
            )

        monkeypatch.setattr(cli, "ExperimentConfig", tiny)
        assert main(["figures", "--budget", "1000"]) == 0
        err = capsys.readouterr().err
        assert "run manifest:" in err
        assert main(["obs", "list"]) == 0
        assert main(["obs", "show", "latest"]) == 0
        out = capsys.readouterr().out
        assert "li" in out

    def test_cache_info_lists_runs_layer(self, capsys, monkeypatch,
                                         tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "runs" in out


class TestNoCacheFlag:
    """--no-cache (and REPRO_TRACE_CACHE=0) must mean *zero* cache
    directory writes on every subcommand that executes kernels."""

    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        target = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
        return target

    def test_run(self, cache_dir, capsys):
        assert main(["run", "li", "--budget", "300", "--no-cache"]) == 0
        assert not cache_dir.exists()

    def test_analyze(self, cache_dir, capsys):
        assert main(["analyze", "li", "--budget", "500", "--no-cache"]) == 0
        assert not cache_dir.exists()

    def test_rtm(self, cache_dir, capsys):
        assert main(
            ["rtm", "li", "--budget", "800", "--sizes", "512", "--no-cache"]
        ) == 0
        assert not cache_dir.exists()

    def test_characterize(self, cache_dir, capsys):
        assert main(["characterize", "li", "--budget", "500",
                     "--no-cache"]) == 0
        assert not cache_dir.exists()

    def test_figures(self, cache_dir, capsys, monkeypatch):
        import repro.cli as cli
        from repro.exp.config import ExperimentConfig

        original = cli.ExperimentConfig

        def tiny(max_instructions, **kwargs):
            return original(
                max_instructions=min(max_instructions, 1000),
                workloads=("li",),
                **kwargs,
            )

        monkeypatch.setattr(cli, "ExperimentConfig", tiny)
        assert main(["figures", "--budget", "1000", "--no-cache"]) == 0
        assert not cache_dir.exists()

    def test_kill_switch_env(self, cache_dir, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        assert main(["run", "li", "--budget", "300"]) == 0
        assert main(["rtm", "li", "--budget", "500", "--sizes", "512"]) == 0
        assert main(["characterize", "li", "--budget", "500"]) == 0
        assert not cache_dir.exists()
