"""Process fan-out helpers."""

import multiprocessing
import os

import pytest

from repro.util.parallel import chunked, default_worker_count, parallel_map


def _square(x: int) -> int:
    return x * x


def _crash_in_worker(x: int) -> int:
    """Kill the worker process on the sentinel item — but only when
    actually running in a worker, so the parent-side recompute of the
    same item succeeds."""
    if x == 7 and multiprocessing.parent_process() is not None:
        os._exit(1)
    return x * x


def _raise_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("boom at 3")
    return x * x


class TestParallelMap:
    def test_preserves_order(self):
        assert parallel_map(_square, list(range(20))) == [x * x for x in range(20)]

    def test_empty(self):
        assert parallel_map(_square, []) == []

    def test_serial_fallback_single_item(self):
        assert parallel_map(_square, [3]) == [9]

    def test_explicit_single_worker(self):
        assert parallel_map(_square, [1, 2, 3], max_workers=1) == [1, 4, 9]

    def test_multi_worker(self):
        # on a single-core box this still exercises the pool path
        assert parallel_map(_square, list(range(8)), max_workers=2) == [
            x * x for x in range(8)
        ]

    def test_worker_crash_falls_back_to_sequential(self, caplog):
        """A dead worker must not lose the run: the in-flight items are
        named in a warning and recomputed in the parent."""
        import logging

        items = list(range(20))
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            results = parallel_map(_crash_in_worker, items, max_workers=2)
        assert results == [x * x for x in items]
        assert any("worker process died" in r.message for r in caplog.records)

    def test_deterministic_exception_propagates(self):
        """An exception raised *by fn* is not retried or swallowed."""
        with pytest.raises(ValueError, match="boom at 3"):
            parallel_map(_raise_on_three, list(range(8)), max_workers=2)

    def test_deterministic_exception_propagates_serially(self):
        with pytest.raises(ValueError, match="boom at 3"):
            parallel_map(_raise_on_three, [3], max_workers=1)


class TestDefaultWorkerCount:
    def test_at_least_one(self):
        assert default_worker_count(0) == 1

    def test_capped_by_tasks(self):
        assert default_worker_count(1) == 1


class TestChunked:
    def test_even_chunks(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_chunk_larger_than_input(self):
        assert list(chunked([1], 10)) == [[1]]

    def test_zero_chunk_raises(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))
