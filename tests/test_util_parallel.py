"""Process fan-out helpers."""

import pytest

from repro.util.parallel import chunked, default_worker_count, parallel_map


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_preserves_order(self):
        assert parallel_map(_square, list(range(20))) == [x * x for x in range(20)]

    def test_empty(self):
        assert parallel_map(_square, []) == []

    def test_serial_fallback_single_item(self):
        assert parallel_map(_square, [3]) == [9]

    def test_explicit_single_worker(self):
        assert parallel_map(_square, [1, 2, 3], max_workers=1) == [1, 4, 9]

    def test_multi_worker(self):
        # on a single-core box this still exercises the pool path
        assert parallel_map(_square, list(range(8)), max_workers=2) == [
            x * x for x in range(8)
        ]


class TestDefaultWorkerCount:
    def test_at_least_one(self):
        assert default_worker_count(0) == 1

    def test_capped_by_tasks(self):
        assert default_worker_count(1) == 1


class TestChunked:
    def test_even_chunks(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_chunk_larger_than_input(self):
        assert list(chunked([1], 10)) == [[1]]

    def test_zero_chunk_raises(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))
