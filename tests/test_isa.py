"""ISA definition: opcodes, latencies and the location encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.instruction import Instruction
from repro.isa.opcodes import CLASS_LATENCY, LATENCY, Opcode, OpClass, latency_of, op_class
from repro.isa.registers import (
    FP_REG_BASE,
    MEM_LOC_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    REG_ALIASES,
    loc_freg,
    loc_is_freg,
    loc_is_int_reg,
    loc_is_mem,
    loc_is_reg,
    loc_mem,
    loc_mem_addr,
    loc_name,
    loc_reg,
    parse_register,
)


class TestOpcodes:
    def test_every_opcode_has_a_class(self):
        for op in Opcode:
            assert isinstance(op_class(op), OpClass)

    def test_every_opcode_has_a_latency(self):
        for op in Opcode:
            assert latency_of(op) >= 1
            assert LATENCY[op] == CLASS_LATENCY[op_class(op)]

    def test_alpha_21164_latency_structure(self):
        # the relative latencies the paper's analysis depends on
        assert latency_of(Opcode.ADD) == 1
        assert latency_of(Opcode.LW) == 2
        assert latency_of(Opcode.MUL) == 8
        assert latency_of(Opcode.FADD) == 4
        assert latency_of(Opcode.FMUL) == 4
        assert latency_of(Opcode.FDIV) > latency_of(Opcode.FMUL)
        assert latency_of(Opcode.FSQRT) > latency_of(Opcode.FDIV)

    def test_memory_classes(self):
        assert op_class(Opcode.LW) is OpClass.LOAD
        assert op_class(Opcode.FLW) is OpClass.LOAD
        assert op_class(Opcode.SW) is OpClass.STORE
        assert op_class(Opcode.FSW) is OpClass.STORE

    def test_control_classes(self):
        assert op_class(Opcode.BEQ) is OpClass.BRANCH
        assert op_class(Opcode.J) is OpClass.JUMP
        assert op_class(Opcode.JAL) is OpClass.JUMP
        assert op_class(Opcode.HALT) is OpClass.CONTROL


class TestInstruction:
    def test_latency_property(self):
        inst = Instruction(Opcode.MUL, rd=1, rs1=2, rs2=3)
        assert inst.latency == 8

    def test_frozen(self):
        inst = Instruction(Opcode.ADD)
        with pytest.raises(AttributeError):
            inst.rd = 5

    def test_str(self):
        text = str(Instruction(Opcode.ADDI, rd=1, rs1=2, imm=7))
        assert "addi" in text and "imm=7" in text


class TestLocationEncoding:
    def test_int_registers(self):
        for i in range(NUM_INT_REGS):
            loc = loc_reg(i)
            assert loc_is_reg(loc) and loc_is_int_reg(loc)
            assert not loc_is_freg(loc) and not loc_is_mem(loc)

    def test_fp_registers(self):
        for i in range(NUM_FP_REGS):
            loc = loc_freg(i)
            assert loc_is_reg(loc) and loc_is_freg(loc)
            assert not loc_is_int_reg(loc) and not loc_is_mem(loc)

    def test_fp_base_disjoint(self):
        assert loc_freg(0) == FP_REG_BASE
        assert loc_reg(NUM_INT_REGS - 1) < loc_freg(0) < loc_mem(0)

    @given(st.integers(min_value=0, max_value=2**30))
    def test_memory_roundtrip(self, addr):
        loc = loc_mem(addr)
        assert loc_is_mem(loc)
        assert loc_mem_addr(loc) == addr

    def test_mem_addr_on_register_raises(self):
        with pytest.raises(ValueError):
            loc_mem_addr(loc_reg(3))

    def test_mem_base(self):
        assert loc_mem(0) == MEM_LOC_BASE

    def test_loc_names(self):
        assert loc_name(loc_reg(5)) == "r5"
        assert loc_name(loc_freg(2)) == "f2"
        assert "mem[" in loc_name(loc_mem(16))

    def test_loc_name_negative_raises(self):
        with pytest.raises(ValueError):
            loc_name(-1)


class TestParseRegister:
    def test_numeric_int(self):
        assert parse_register("r7") == (False, 7)

    def test_numeric_fp(self):
        assert parse_register("f31") == (True, 31)

    def test_aliases(self):
        assert parse_register("sp") == (False, 29)
        assert parse_register("ra") == (False, 31)
        assert parse_register("zero") == (False, 0)
        assert parse_register("t0") == (False, 8)
        assert parse_register("a0") == (False, 4)

    def test_dollar_prefix(self):
        assert parse_register("$t1") == (False, 9)

    def test_case_insensitive(self):
        assert parse_register("R3") == (False, 3)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            parse_register("r32")
        with pytest.raises(ValueError):
            parse_register("f99")

    def test_garbage(self):
        with pytest.raises(ValueError):
            parse_register("notareg")

    def test_all_aliases_valid(self):
        for alias, idx in REG_ALIASES.items():
            assert parse_register(alias) == (False, idx)
