"""Full-stack integration tests: every layer composed end to end."""

import pytest

from repro import (
    ConstantReuseLatency,
    DataflowModel,
    FiniteReuseSimulator,
    ILRHeuristic,
    Machine,
    PipelineModel,
    RTMConfig,
    instruction_reusability,
    load_trace,
    maximal_reusable_spans,
    save_trace,
    tlr_reuse_plan,
)
from repro.lang import compile_source
from repro.lang.compiler import compile_module
from repro.lang.memoize import memoize_functions

KERNEL = """
var grid[32]

func smooth(passes) {
    var p = 0
    while (p < passes) {
        var i = 1
        while (i < 31) {
            grid[i] = (grid[i - 1] + grid[i + 1]) / 2
            i = i + 1
        }
        p = p + 1
    }
    return grid[16]
}

func main() {
    var i = 0
    while (i < 32) {
        grid[i] = (i * 37) % 19
        i = i + 1
    }
    return smooth(25)
}
"""


@pytest.fixture(scope="module")
def kernel_trace():
    machine = Machine(compile_source(KERNEL, name="smooth"))
    trace = machine.run(max_instructions=40_000)
    assert trace.halted
    return trace


class TestLangToAnalyses:
    def test_rl_kernel_exhibits_reuse(self, kernel_trace):
        reuse = instruction_reusability(kernel_trace)
        # the grid converges, so later passes repeat
        assert reuse.percent_reusable > 40.0

    def test_rl_kernel_through_limit_study(self, kernel_trace):
        reuse = instruction_reusability(kernel_trace)
        spans = maximal_reusable_spans(kernel_trace, reuse.flags)
        model = DataflowModel(window_size=256)
        base = model.analyze(kernel_trace)
        tlr = model.analyze(
            kernel_trace, tlr_reuse_plan(kernel_trace, spans, ConstantReuseLatency(1.0))
        )
        assert tlr.speedup_over(base) >= 1.0

    def test_rl_kernel_through_finite_engine_and_pipeline(self, kernel_trace):
        sim = FiniteReuseSimulator(
            RTMConfig("t", 64, 4, 8), ILRHeuristic(expand=True)
        )
        reuse = sim.run(kernel_trace)  # validated internally
        model = PipelineModel()
        base = model.simulate(kernel_trace)
        timed = model.simulate(kernel_trace, reuse)
        assert timed.committed_instructions == len(kernel_trace)
        assert timed.total_cycles <= base.total_cycles

    def test_trace_serialisation_preserves_analyses(self, kernel_trace, tmp_path):
        path = tmp_path / "kernel.jsonl.gz"
        save_trace(kernel_trace, path)
        loaded = load_trace(path)
        assert (
            instruction_reusability(loaded).percent_reusable
            == instruction_reusability(kernel_trace).percent_reusable
        )
        sim = FiniteReuseSimulator(RTMConfig("t", 64, 4, 8), ILRHeuristic(True))
        assert (
            sim.run(loaded).reused_instructions
            == sim.run(kernel_trace).reused_instructions
        )


class TestMemoizationMeetsHardwareReuse:
    def test_memoized_binary_is_still_reusable_by_hardware(self):
        src = """
        func fib(n) {
            if (n < 2) { return n }
            return fib(n - 1) + fib(n - 2)
        }
        func main() {
            var r = 0
            var round = 0
            while (round < 30) {
                r = fib(12)
                round = round + 1
            }
            return r
        }
        """
        module = memoize_functions(src, ["fib"])
        machine = Machine(compile_module(module))
        trace = machine.run(max_instructions=200_000)
        assert trace.halted
        # after round 1 the memo table answers immediately, and those
        # lookups themselves repeat -> high hardware reusability on top
        reuse = instruction_reusability(trace)
        assert reuse.percent_reusable > 50.0


class TestWorkloadsThroughEverything:
    @pytest.mark.parametrize("name", ["compress", "applu"])
    def test_pipeline_ipc_below_limit_ipc(self, name):
        """The bounded core can never beat the dataflow limit."""
        from repro.workloads.base import run_workload

        trace = run_workload(name, max_instructions=4_000)
        limit = DataflowModel(window_size=None).analyze(trace)
        core = PipelineModel().simulate(trace)
        assert core.ipc <= limit.ipc + 1e-9

    def test_finite_reuse_below_limit_reuse(self):
        from repro.workloads.base import run_workload

        trace = run_workload("li", max_instructions=6_000)
        limit = instruction_reusability(trace)
        sim = FiniteReuseSimulator(RTMConfig("t", 128, 8, 8), ILRHeuristic(True))
        result = sim.run(trace)
        assert result.reused_instructions <= limit.reusable_count
