"""Differential tests: the fused engine against the per-scenario model.

The :class:`FusedDataflowEngine` re-implements every reuse-plan family
as a tight per-scenario pass over one shared dependence precompute.
The per-scenario :class:`DataflowModel` (plus the plan builders in
``baselines.ilr`` and ``core.reuse_tlr``) is the slow oracle; the
engine must match it bit-for-bit, not just within a tolerance.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ilr import ilr_reuse_plan, instruction_reusability
from repro.core.reuse_tlr import (
    ConstantReuseLatency,
    ProportionalReuseLatency,
    tlr_reuse_plan,
)
from repro.core.traces import maximal_reusable_spans
from repro.dataflow.model import DataflowModel, FusedDataflowEngine, Scenario
from repro.exp.config import ExperimentConfig
from repro.exp.runner import run_profile, run_profile_reference
from repro.workloads.base import run_workload

from test_model_properties import dyn_streams


def reference_result(stream, scenario, flags, spans):
    """Evaluate one scenario through the original per-scenario path."""
    model = DataflowModel(scenario.window_size)
    if scenario.kind == "base":
        return model.analyze(stream)
    if scenario.kind == "ilr":
        plan = ilr_reuse_plan(stream, flags, scenario.latency)
        return model.analyze(stream, plan)
    if scenario.k is not None:
        latency_model = ProportionalReuseLatency(scenario.k)
    else:
        latency_model = ConstantReuseLatency(scenario.latency)
    plan = tlr_reuse_plan(
        stream, spans, latency_model, fetch_free=scenario.fetch_free
    )
    return model.analyze(stream, plan)


@st.composite
def scenarios(draw):
    """Random scenarios spanning every reuse family and window regime."""
    kind = draw(st.sampled_from(["base", "ilr", "tlr"]))
    window = draw(st.none() | st.integers(min_value=1, max_value=12))
    latency = draw(st.sampled_from([0.5, 1.0, 2.0, 4.0]))
    k = None
    fetch_free = True
    if kind == "tlr":
        fetch_free = draw(st.booleans())
        if draw(st.booleans()):
            k = draw(st.sampled_from([1 / 8, 1 / 2, 1.0]))
    return Scenario(
        kind, window_size=window, latency=latency, k=k, fetch_free=fetch_free
    )


@given(dyn_streams(), st.lists(scenarios(), min_size=1, max_size=6))
@settings(max_examples=200, deadline=None)
def test_fused_engine_matches_per_scenario_model(stream, scens):
    flags = instruction_reusability(stream).flags
    spans = maximal_reusable_spans(stream, flags)
    engine = FusedDataflowEngine(stream, flags=flags, spans=spans)
    for scenario in scens:
        fused = engine.analyze(scenario)
        ref = reference_result(stream, scenario, flags, spans)
        assert fused.instruction_count == ref.instruction_count
        assert fused.total_cycles == ref.total_cycles  # exact, not approx
        assert fused.reused_count == ref.reused_count
        assert fused.window_size == ref.window_size


@given(dyn_streams())
@settings(max_examples=100, deadline=None)
def test_analyze_all_matches_individual_calls(stream):
    flags = instruction_reusability(stream).flags
    spans = maximal_reusable_spans(stream, flags)
    engine = FusedDataflowEngine(stream, flags=flags, spans=spans)
    scens = [
        Scenario("base", window_size=None),
        Scenario("base", window_size=8),
        Scenario("ilr", window_size=8, latency=2.0),
        Scenario("tlr", window_size=None, latency=1.0),
        Scenario("tlr", window_size=8, k=1 / 4),
    ]
    batch = engine.analyze_all(scens)
    for scenario, result in zip(scens, batch):
        single = engine.analyze(scenario)
        assert result.total_cycles == single.total_cycles
        assert result.reused_count == single.reused_count


class TestOnRealWorkloads:
    """The full profile pipeline, fused vs. reference, on real kernels."""

    def test_profiles_bit_identical(self):
        config = ExperimentConfig(max_instructions=3_000, use_cache=False)
        for name in ("compress", "tomcatv"):
            fused = run_profile(name, config)
            reference = run_profile_reference(name, config)
            assert fused == reference

    def test_engine_accepts_columnar_trace(self):
        trace = run_workload("li", max_instructions=2_000, use_cache=False)
        flags = instruction_reusability(trace).flags
        spans = maximal_reusable_spans(trace, flags)
        engine = FusedDataflowEngine(trace, flags=flags, spans=spans)
        fused = engine.analyze(Scenario("base", window_size=64))
        ref = DataflowModel(64).analyze(trace)
        assert fused.total_cycles == ref.total_cycles


class TestScenarioValidation:
    def test_unknown_kind(self):
        import pytest

        with pytest.raises(ValueError, match="unknown scenario kind"):
            Scenario("frobnicate")

    def test_bad_window(self):
        import pytest

        with pytest.raises(ValueError, match="window_size"):
            Scenario("base", window_size=0)

    def test_k_requires_tlr(self):
        import pytest

        with pytest.raises(ValueError, match="proportional"):
            Scenario("ilr", k=0.5)
