"""The valid-bit (invalidation) RTM scheme of section 3.3."""

import pytest

from repro.core.rtm.entry import RTMEntry
from repro.core.rtm.invalidating import InvalidatingRTM
from repro.core.rtm.memory import RTMConfig, ReuseTraceMemory
from repro.core.rtm.collector import FixedLengthHeuristic, ILRHeuristic
from repro.core.rtm.simulator import FiniteReuseSimulator

from conftest import run_asm


def entry(pc=0, length=3, inputs=((1, 5),), outputs=((2, 6),), next_pc=10):
    return RTMEntry(
        start_pc=pc, length=length, inputs=inputs, outputs=outputs, next_pc=next_pc
    )


def small():
    return InvalidatingRTM(RTMConfig("t", num_sets=2, ways=2, traces_per_pc=2))


class TestInvalidation:
    def test_insert_then_hit_without_value_check(self):
        rtm = small()
        rtm.insert(entry())
        # the valid-bit test does not look at the values at all
        assert rtm.lookup(0, {}) is not None

    def test_write_to_input_invalidates(self):
        rtm = small()
        rtm.insert(entry(inputs=((1, 5), (2, 6))))
        rtm.on_write(2)
        assert rtm.lookup(0, {}) is None
        assert rtm.invalidations == 1
        assert rtm.occupancy == 0

    def test_same_value_write_still_invalidates(self):
        # the scheme's conservatism: it cannot see the value
        rtm = small()
        rtm.insert(entry(inputs=((1, 5),)))
        rtm.on_write(1)  # architecture wrote 5 again — doesn't matter
        assert rtm.lookup(0, {1: 5}) is None

    def test_write_to_unrelated_location_keeps_entry(self):
        rtm = small()
        rtm.insert(entry(inputs=((1, 5),)))
        rtm.on_write(99)
        assert rtm.lookup(0, {}) is not None

    def test_entry_without_inputs_is_immortal(self):
        rtm = small()
        rtm.insert(entry(inputs=()))
        for loc in range(10):
            rtm.on_write(loc)
        assert rtm.lookup(0, {}) is not None

    def test_longest_valid_entry_wins(self):
        rtm = small()
        rtm.insert(entry(length=2, inputs=((1, 5),)))
        rtm.insert(entry(length=5, inputs=((2, 6),)))
        assert rtm.lookup(0, {}).length == 5
        rtm.on_write(2)  # kill the long one
        assert rtm.lookup(0, {}).length == 2

    def test_eviction_unwatches(self):
        rtm = InvalidatingRTM(RTMConfig("t", num_sets=1, ways=1, traces_per_pc=1))
        rtm.insert(entry(pc=0, inputs=((1, 5),)))
        rtm.insert(entry(pc=1, inputs=((1, 6),)))  # evicts pc 0's bucket
        rtm.on_write(1)  # must not blow up on the stale watcher
        assert rtm.occupancy == 0

    def test_stats(self):
        rtm = small()
        rtm.insert(entry())
        rtm.lookup(0, {})
        rtm.lookup(1, {})
        assert rtm.hits == 1 and rtm.lookups == 2
        assert rtm.hit_rate() == pytest.approx(0.5)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            InvalidatingRTM(RTMConfig("t", num_sets=0, ways=1, traces_per_pc=1))


@pytest.fixture(scope="module")
def loopy_trace():
    _, trace = run_asm(
        """
        .data
    tab: .word 3 1 4 1 5 9 2 6
        .text
    main:
        li   s0, 40
    pass:
        la   t0, tab
        li   t1, 0
        li   t2, 8
    loop:
        add  t3, t0, t1
        lw   t4, 0(t3)
        mul  t5, t4, t4
        sw   t5, 16(t3)
        addi t1, t1, 1
        blt  t1, t2, loop
        subi s0, s0, 1
        bgtz s0, pass
        halt
        """,
        max_instructions=4000,
    )
    return trace


class TestInvalidatingSimulation:
    def test_runs_validated(self, loopy_trace):
        """validate=True proves the valid-bit invariant is sound: a hit
        always corresponds to the actual dynamic path."""
        sim = FiniteReuseSimulator(
            RTMConfig("t", 8, 4, 4), ILRHeuristic(expand=True),
            reuse_test="invalidate",
        )
        result = sim.run(loopy_trace)
        assert result.total_instructions == len(loopy_trace)
        assert result.rtm_invalidations > 0

    def test_conservative_vs_comparing(self, loopy_trace):
        """Invalidation can only lose reuse relative to value compare."""
        config = RTMConfig("t", 8, 4, 4)
        for heuristic in (ILRHeuristic(expand=True), FixedLengthHeuristic(4)):
            compare = FiniteReuseSimulator(
                config, heuristic, reuse_test="compare"
            ).run(loopy_trace)
            invalidate = FiniteReuseSimulator(
                config, heuristic, reuse_test="invalidate"
            ).run(loopy_trace)
            assert (
                invalidate.reused_instructions <= compare.reused_instructions
            ), heuristic.name

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown reuse test"):
            FiniteReuseSimulator(
                RTMConfig("t", 8, 4, 4), ILRHeuristic(), reuse_test="magic"
            )


class TestIndexSchemes:
    def test_hashed_index_spreads(self):
        from repro.core.rtm.memory import hashed_index, pc_index

        # PCs congruent mod 4 all collide under pc indexing but spread
        # over the sets under hashing
        pcs = [4 * i for i in range(16)]
        direct = {pc_index(pc) % 4 for pc in pcs}
        hashed = {hashed_index(pc) % 4 for pc in pcs}
        assert len(direct) == 1
        assert len(hashed) >= 3

    def test_rtm_with_hashed_index(self):
        from repro.core.rtm.memory import hashed_index

        rtm = ReuseTraceMemory(
            RTMConfig("t", num_sets=4, ways=1, traces_per_pc=2),
            index_fn=hashed_index,
        )
        # 16 and 20 are congruent mod 4 but hash to different sets
        assert hashed_index(16) % 4 != hashed_index(20) % 4
        rtm.insert(entry(pc=16))
        rtm.insert(entry(pc=20, inputs=((1, 5),)))
        # under pc indexing these would collide in one way; hashing
        # keeps both alive
        assert rtm.lookup(16, {1: 5}) is not None
        assert rtm.lookup(20, {1: 5}) is not None
