"""CFG recovery, loop nests, trip counts, frequencies, cardinality."""

from __future__ import annotations

import math

from repro.lang.compiler import compile_source
from repro.static.cfg import (
    DEFAULT_TRIP_COUNT,
    build_cfg,
    class_census,
    data_regions,
    estimate_frequencies,
    function_entry,
    loop_value_cardinality,
    reg_reads,
    reg_writes,
)
from repro.vm.assembler import assemble
from repro.workloads.generators import rl_loop_nest

COUNTED_LOOP = """
.text
main:
    li   t0, 0
    li   t1, 10
loop:
    addi t0, t0, 1
    blt  t0, t1, loop
    halt
"""


class TestBuildCfg:
    def test_blocks_partition_instructions(self):
        cfg = build_cfg(assemble(COUNTED_LOOP))
        pcs = sorted(pc for b in cfg.blocks for pc in b.pcs())
        assert pcs == list(range(len(cfg.program.instructions)))

    def test_counted_loop_detected(self):
        cfg = build_cfg(assemble(COUNTED_LOOP))
        assert len(cfg.loops) == 1
        assert cfg.loops[0].depth == 1

    def test_rl_nest_depths(self):
        program = compile_source(rl_loop_nest(depth=3, trips=5))
        cfg = build_cfg(program)
        assert sorted(loop.depth for loop in cfg.loops) == [1, 2, 3]

    def test_loops_enclosing_is_outer_to_inner(self):
        program = compile_source(rl_loop_nest(depth=2, trips=5))
        cfg = build_cfg(program)
        inner = max(range(len(cfg.loops)), key=lambda i: cfg.loops[i].depth)
        enclosing = cfg.loops_enclosing(cfg.loops[inner].header)
        depths = [cfg.loops[i].depth for i in enclosing]
        assert depths == sorted(depths)
        assert inner in enclosing


class TestTripCounts:
    def test_register_counter_loop_exact(self):
        cfg = build_cfg(assemble(COUNTED_LOOP))
        loop = cfg.loops[0]
        assert loop.exact
        assert loop.trip_count == 10.0

    def test_rl_while_slot_idiom_recognised(self):
        # the RL compiler keeps counters in stack slots; the
        # LW/SLT/BEQ + LW/ADD/SW idiom must still yield exact trips
        program = compile_source(rl_loop_nest(depth=1, trips=12))
        cfg = build_cfg(program)
        loop = next(l for l in cfg.loops if l.depth == 1)
        assert loop.exact
        assert loop.trip_count == 12.0

    def test_rl_trip_counts_distinguish_families(self):
        trips = {}
        for n in (4, 32):
            cfg = build_cfg(compile_source(rl_loop_nest(depth=1, trips=n)))
            trips[n] = cfg.loops[0].trip_count
        assert trips[4] == 4.0
        assert trips[32] == 32.0

    def test_unbounded_loop_defaults(self):
        cfg = build_cfg(assemble("""
        .text
        main:
            li  t0, 0
        spin:
            add t0, t0, t1
            j   spin
        """))
        assert cfg.loops[0].trip_count == float(DEFAULT_TRIP_COUNT)
        assert not cfg.loops[0].exact


class TestFrequencies:
    def test_budget_caps_total(self):
        program = compile_source(rl_loop_nest(depth=3, trips=12))
        cfg = build_cfg(program)
        freqs = estimate_frequencies(cfg, budget=8_000)
        total = sum(
            freqs[b.index] * len(b)
            for b in cfg.blocks if b.index in cfg.reachable
        )
        assert total <= 8_000 * 1.01

    def test_nesting_multiplies(self):
        program = compile_source(rl_loop_nest(depth=2, trips=12))
        cfg = build_cfg(program)
        freqs = estimate_frequencies(cfg)
        inner = max(range(len(cfg.loops)), key=lambda i: cfg.loops[i].depth)
        outer = min(range(len(cfg.loops)), key=lambda i: cfg.loops[i].depth)
        inner_f = freqs[cfg.loops[inner].header]
        outer_f = freqs[cfg.loops[outer].header]
        assert inner_f > outer_f > 0


class TestCensus:
    def test_depth_keys_and_positive_counts(self):
        program = compile_source(rl_loop_nest(depth=2, trips=8))
        cfg = build_cfg(program)
        census = class_census(cfg, estimate_frequencies(cfg))
        assert 0 in census or 1 in census
        for classes in census.values():
            for count in classes.values():
                assert count >= 0.0


class TestCardinality:
    def test_data_region_distinct_values(self):
        program = assemble("""
        .data
        tab: .word 1 2 1 2 1 2
        .text
        main:
            halt
        """)
        regions = data_regions(program)
        assert any(card == 2.0 for _, _, card in regions)

    def test_uniform_region_is_unbounded(self):
        program = assemble("""
        .data
        buf: .space 16
        .text
        main:
            halt
        """)
        regions = data_regions(program)
        # runtime-written space: value repetition unknowable
        assert all(math.isinf(card) for _, _, card in regions)

    def test_periodic_read_bounds_register(self):
        src = rl_loop_nest(depth=1, trips=12, value_period=2)
        program = compile_source(src)
        cfg = build_cfg(program)
        cards = loop_value_cardinality(cfg, 0)
        assert any(math.isfinite(c) for c in cards.values())


class TestRegisterHelpers:
    def test_reads_writes_filter_r0(self):
        program = assemble("add r0, r1, r2")
        inst = program.instructions[0]
        assert tuple(reg_writes(inst)) == ()
        assert set(reg_reads(inst)) == {1, 2}

    def test_function_entry_attribution(self):
        program = assemble("""
        .text
        main:
            jal  helper
            halt
        helper:
            addi t0, t0, 1
            jr   ra
        """)
        cfg = build_cfg(program)
        helper_block = cfg.block_of[2]
        assert function_entry(cfg, helper_block) == helper_block
        assert function_entry(cfg, 0) == 0
