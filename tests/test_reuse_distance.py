"""Reuse-distance analysis (Mattson stack distances over signatures)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ilr import instruction_reusability
from repro.baselines.reuse_distance import (
    _Fenwick,
    capacity_hit_curve,
    signature_reuse_distances,
)
from repro.isa.opcodes import Opcode
from repro.vm.trace import DynInst


def sig_inst(pc, value):
    return DynInst(pc, Opcode.ADD, ((1, value),), ((2, 0),), 1, pc + 1)


class TestFenwick:
    def test_prefix_sums(self):
        tree = _Fenwick(8)
        tree.add(0, 1)
        tree.add(3, 2)
        tree.add(7, 5)
        assert tree.prefix(1) == 1
        assert tree.prefix(4) == 3
        assert tree.prefix(8) == 8

    def test_range_sum(self):
        tree = _Fenwick(8)
        for i in range(8):
            tree.add(i, 1)
        assert tree.range_sum(2, 5) == 3
        assert tree.range_sum(0, 8) == 8

    def test_negative_delta(self):
        tree = _Fenwick(4)
        tree.add(2, 1)
        tree.add(2, -1)
        assert tree.prefix(4) == 0

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_matches_naive(self, indices):
        tree = _Fenwick(16)
        naive = [0] * 16
        for i in indices:
            tree.add(i, 1)
            naive[i] += 1
        for lo in range(0, 16, 3):
            for hi in range(lo, 17, 4):
                assert tree.range_sum(lo, hi) == sum(naive[lo:hi])


class TestSignatureDistances:
    def test_first_occurrence_minus_one(self):
        result = signature_reuse_distances([sig_inst(0, 1)])
        assert result.distances == [-1]
        assert result.reusable_count == 0

    def test_immediate_repeat_distance_zero(self):
        stream = [sig_inst(0, 1), sig_inst(0, 1)]
        assert signature_reuse_distances(stream).distances == [-1, 0]

    def test_intervening_distinct_signatures_counted(self):
        stream = [
            sig_inst(0, 1),  # A
            sig_inst(1, 2),  # B
            sig_inst(2, 3),  # C
            sig_inst(0, 1),  # A again: B and C in between -> distance 2
        ]
        assert signature_reuse_distances(stream).distances[-1] == 2

    def test_repeats_do_not_double_count(self):
        stream = [
            sig_inst(0, 1),  # A
            sig_inst(1, 2),  # B
            sig_inst(1, 2),  # B again (still one distinct signature)
            sig_inst(0, 1),  # A: distance 1, not 2
        ]
        assert signature_reuse_distances(stream).distances[-1] == 1

    def test_reusable_count_matches_ilr(self):
        """Every instruction with a finite distance is exactly an
        ILR-reusable instruction (same signature seen before)."""
        stream = [sig_inst(i % 3, (i * 7) % 4) for i in range(60)]
        distances = signature_reuse_distances(stream)
        reuse = instruction_reusability(stream)
        assert distances.reusable_count == reuse.reusable_count
        for d, flag in zip(distances.distances, reuse.flags):
            assert (d >= 0) == flag

    def test_cdf_monotone_and_bounded(self):
        stream = [sig_inst(i % 5, i % 3) for i in range(100)]
        result = signature_reuse_distances(stream)
        curve = result.cdf([1, 4, 16, 64])
        rates = [rate for _cap, rate in curve]
        assert rates == sorted(rates)
        assert all(0.0 <= r <= 1.0 for r in rates)

    def test_cdf_limit_equals_reusability(self):
        """With unbounded capacity the predicted hit rate equals the
        infinite-table reusability."""
        stream = [sig_inst(i % 5, i % 3) for i in range(100)]
        result = signature_reuse_distances(stream)
        reuse = instruction_reusability(stream)
        (_cap, rate), = result.cdf([10**9])
        assert rate * 100 == pytest.approx(reuse.percent_reusable)


class TestCapacityCurve:
    def test_curve_shape(self):
        fig = capacity_hit_curve(
            ["compress", "li"], capacities=(16, 256, 4096), max_instructions=4000
        )
        rates = [row[1] for row in fig.rows]
        assert rates == sorted(rates)
        assert rates[-1] > rates[0]
