"""Value prediction baseline: predictors, coverage and timing plans."""

import pytest

from repro.baselines.prediction import (
    LastValuePredictor,
    StridePredictor,
    value_predictability,
    value_prediction_plan,
)
from repro.dataflow.model import DataflowModel
from repro.isa.opcodes import Opcode
from repro.vm.trace import DynInst


def out_inst(pc, value, reads=((1, 0),)):
    return DynInst(pc, Opcode.ADD, tuple(reads), ((2, value),), 1, pc + 1)


class TestLastValuePredictor:
    def test_first_occurrence_misses(self):
        p = LastValuePredictor()
        assert p.predict_and_update(out_inst(0, 5)) is False

    def test_repeat_hits(self):
        p = LastValuePredictor()
        p.predict_and_update(out_inst(0, 5))
        assert p.predict_and_update(out_inst(0, 5)) is True

    def test_changed_value_misses(self):
        p = LastValuePredictor()
        p.predict_and_update(out_inst(0, 5))
        assert p.predict_and_update(out_inst(0, 6)) is False

    def test_per_pc_state(self):
        p = LastValuePredictor()
        p.predict_and_update(out_inst(0, 5))
        assert p.predict_and_update(out_inst(1, 5)) is False

    def test_no_outputs_never_hits(self):
        p = LastValuePredictor()
        branch = DynInst(0, Opcode.BEQ, ((1, 0),), (), 1, 1)
        assert p.predict_and_update(branch) is False
        assert p.predict_and_update(branch) is False


class TestStridePredictor:
    def test_arithmetic_progression_hits(self):
        p = StridePredictor()
        assert p.predict_and_update(out_inst(0, 10)) is False  # no history
        assert p.predict_and_update(out_inst(0, 12)) is False  # stride unknown
        assert p.predict_and_update(out_inst(0, 14)) is True
        assert p.predict_and_update(out_inst(0, 16)) is True

    def test_constant_sequence_hits(self):
        p = StridePredictor()
        p.predict_and_update(out_inst(0, 7))
        # second occurrence: no stride yet, falls back to last-value
        assert p.predict_and_update(out_inst(0, 7)) is True
        assert p.predict_and_update(out_inst(0, 7)) is True

    def test_broken_stride_misses_then_relearns(self):
        p = StridePredictor()
        for v in (1, 2, 3):
            p.predict_and_update(out_inst(0, v))
        assert p.predict_and_update(out_inst(0, 99)) is False
        assert p.predict_and_update(out_inst(0, 195)) is True  # stride 96

    def test_stride_catches_induction_variable(self):
        """The classic case: loop counters are stride-predictable but
        never value-reusable (each value is fresh)."""
        from repro.baselines.ilr import instruction_reusability

        # i = i + 1: reads its previous value, so every instance has a
        # fresh input signature (never reusable) but a constant stride
        stream = [
            DynInst(0, Opcode.ADD, ((2, i),), ((2, i + 1),), 1, 1)
            for i in range(20)
        ]
        stride = value_predictability(stream, StridePredictor())
        reuse = instruction_reusability(stream)
        assert stride.percent_predicted > 80.0
        assert reuse.percent_reusable == 0.0


class TestPredictionPlan:
    def test_alignment_checked(self):
        with pytest.raises(ValueError):
            value_prediction_plan([out_inst(0, 1)], [True, False])

    def test_predicted_instructions_ungated(self):
        # a serial chain of multiplies whose outputs are constant:
        # last-value prediction breaks the chain entirely
        stream = []
        for i in range(20):
            stream.append(
                DynInst(0, Opcode.MUL, ((1, 1),), ((1, 1),), 8, 1)
            )
        flags = value_predictability(stream, LastValuePredictor()).flags
        plan = value_prediction_plan(stream, flags)
        model = DataflowModel(None)
        base = model.analyze(stream)
        predicted = model.analyze(stream, plan)
        assert base.total_cycles == 160
        # first instance unpredicted (8 cycles); the rest complete at 1
        assert predicted.total_cycles <= 16

    def test_coverage_result_fields(self):
        stream = [out_inst(0, 5), out_inst(0, 5), out_inst(0, 6)]
        result = value_predictability(stream, LastValuePredictor())
        assert result.total_count == 3
        assert result.predicted_count == 1
        assert result.percent_predicted == pytest.approx(100 / 3)

    def test_empty_stream(self):
        result = value_predictability([], LastValuePredictor())
        assert result.percent_predicted == 0.0


class TestPredictionVsReuseContrast:
    def test_prediction_not_operand_gated(self):
        """The [14] distinction: with a late producer, reuse waits but
        prediction does not."""
        from repro.baselines.ilr import ilr_reuse_plan, instruction_reusability

        producer = DynInst(9, Opcode.MUL, ((3, 2),), ((1, 4),), 8, 10)
        consumer = DynInst(10, Opcode.ADD, ((1, 4),), ((2, 5),), 1, 11)
        stream = [producer, consumer] * 4
        model = DataflowModel(None)

        reuse_flags = instruction_reusability(stream).flags
        reuse_time = model.analyze(
            stream, ilr_reuse_plan(stream, reuse_flags, 1.0)
        ).total_cycles

        pred_flags = value_predictability(stream, LastValuePredictor()).flags
        pred_time = model.analyze(
            stream, value_prediction_plan(stream, pred_flags)
        ).total_cycles

        # reuse of the consumer still waits for the producer's value
        # (9 cycles for the first pair); prediction completes the
        # later pairs without waiting at all
        assert pred_time <= reuse_time
