"""Ablation: software memoization vs hardware trace reuse (section 2).

The paper's related work opens with the software form of data value
reuse — memoization.  This ablation runs the same recursive workload
(a) plain, (b) software-memoized at the source level, and (c) plain
but behind the hardware RTM engine, and compares the work each
approach eliminates.  Software memoization removes the instructions
*before* they execute (the dynamic stream shrinks); hardware reuse
leaves the program unchanged and skips instructions at fetch.
"""

from repro.core.rtm.collector import ILRHeuristic
from repro.core.rtm.memory import RTM_PRESETS
from repro.core.rtm.simulator import FiniteReuseSimulator
from repro.exp.figures import FigureResult
from repro.lang.compiler import compile_module, compile_source
from repro.lang.memoize import memoize_functions
from repro.vm.machine import Machine

SOURCE = """
func fib(n) {
    if (n < 2) { return n }
    return fib(n - 1) + fib(n - 2)
}
func main() {
    var round = 0
    var s = 0
    while (round < 6) {
        s = fib(14)
        round = round + 1
    }
    return s
}
"""


def _run():
    plain_machine = Machine(compile_source(SOURCE, name="fib-plain"))
    plain_trace = plain_machine.run(max_instructions=2_000_000)

    memo_module = memoize_functions(SOURCE, ["fib"], table_size=64)
    memo_machine = Machine(compile_module(memo_module, name="fib-memo"))
    memo_trace = memo_machine.run(max_instructions=2_000_000)

    assert plain_machine.regs[2] == memo_machine.regs[2]

    sim = FiniteReuseSimulator(RTM_PRESETS["4K"], ILRHeuristic(expand=True))
    hw = sim.run(plain_trace)
    effective_hw = len(plain_trace) - hw.reused_instructions

    return [
        ["plain", len(plain_trace), 0.0],
        [
            "hardware RTM (4K, ILR EXP)",
            effective_hw,
            100.0 * hw.reused_instructions / len(plain_trace),
        ],
        [
            "software memoization",
            len(memo_trace),
            100.0 * (1 - len(memo_trace) / len(plain_trace)),
        ],
    ]


def test_ablation_memoization_vs_hardware(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    fig = FigureResult(
        figure_id="ablation_memoization",
        title="Ablation: software memoization vs hardware trace reuse "
        "(recursive fib workload)",
        headers=["approach", "executed_instructions", "work_eliminated_pct"],
        rows=rows,
    )
    report(fig)

    plain, hardware, software = (row[1] for row in rows)
    # both reuse forms eliminate real work...
    assert hardware < plain
    assert software < plain
    # ...and source-level memoization of this fully redundant recursion
    # eliminates more than a finite hardware table does
    assert software < hardware
