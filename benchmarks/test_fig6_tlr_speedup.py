"""Figure 6: trace-level reuse speed-up at 1-cycle reuse latency.

Paper result: TLR far outperforms ILR (average 3.03 vs 1.50 for the
infinite window).  Crucially, for the 256-entry window TLR's speed-up
is *higher* than for the infinite window (3.63 vs 3.03) because reused
traces are neither fetched nor occupy window slots — the opposite
trend to ILR.  ijpeg shows the largest benefit; perl the smallest for
the infinite window.
"""

from repro.exp.figures import figure4, figure6


def test_fig6_tlr_speedup(benchmark, profiles, config, report):
    fig = benchmark.pedantic(figure6, args=(profiles,), rounds=3, iterations=1)
    report(fig)

    avg_inf = fig.value("AVERAGE", "speedup_inf")
    avg_win = fig.value("AVERAGE", "speedup_w256")

    # the headline comparison: TLR beats ILR on the same streams
    fig4 = figure4(profiles, config)
    assert avg_inf >= fig4.value("AVERAGE", "speedup") - 1e-9
    assert avg_win >= 1.0

    # finite window benefits *more* than infinite (fetch/window effect)
    assert avg_win > avg_inf

    per_program = {
        row[0]: (row[1], row[2])
        for row in fig.rows
        if not str(row[0]).startswith(("AVG", "AVERAGE"))
    }
    # every program at least breaks even under the oracle
    for inf, win in per_program.values():
        assert inf >= 1.0 - 1e-9 and win >= 1.0 - 1e-9
    # the window-bound speedup exceeds the infinite one for most programs
    gains = sum(1 for inf, win in per_program.values() if win >= inf)
    assert gains >= len(per_program) * 0.7
