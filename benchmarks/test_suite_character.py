"""Suite characterisation table plus the consolidated shape report.

Not a paper figure; this regenerates (a) the workload-suite statistics
that justify each kernel as a SPEC95 stand-in, and (b) the one-table
summary of every qualitative claim the reproduction targets.
"""

from repro.exp.paper_reference import shape_checks, shape_report
from repro.workloads.base import FP_SUITE, INT_SUITE
from repro.workloads.characterize import suite_characterization


def test_suite_characterization_table(benchmark, report):
    fig = benchmark.pedantic(
        suite_characterization,
        args=(FP_SUITE + INT_SUITE,),
        kwargs={"max_instructions": 10_000},
        rounds=1,
        iterations=1,
    )
    report(fig)

    fp_col = fig.headers.index("fp%")
    br_col = fig.headers.index("br%")
    branchiness = {}
    for row in fig.rows:
        name = row[0]
        if name in FP_SUITE:
            assert row[fp_col] > 10.0, f"{name} should be FP-heavy"
        else:
            assert row[fp_col] == 0.0, f"{name} should be integer-only"
        branchiness[name] = row[br_col]
    # fpppp's signature is straight-line code (huge basic blocks): it
    # must be the least branchy kernel; everything else is branchy
    assert min(branchiness, key=branchiness.get) == "fpppp"
    for name, share in branchiness.items():
        if name != "fpppp":
            assert share > 2.0, f"{name} should be branchy"


def test_shape_report(benchmark, profiles, report):
    fig = benchmark.pedantic(shape_report, args=(profiles,), rounds=1, iterations=1)
    report(fig)
    checks = shape_checks(profiles)
    failing = [c.claim for c in checks if not c.holds]
    assert not failing, f"shape regressions at bench budget: {failing}"
