"""Ablation: the two section-3.3 reuse-test schemes.

The paper offers two ways to decide reusability: compare every stored
input value against the current state, or keep a valid bit cleared by
any write to an input location ("the latter approach requires a much
simpler reuse test").  This ablation quantifies what the simpler
hardware costs: every write invalidates conservatively, so traces
whose inputs include frequently rewritten registers rarely survive to
their next use.
"""

from repro.core.rtm.collector import FixedLengthHeuristic, ILRHeuristic
from repro.core.rtm.memory import RTM_PRESETS
from repro.core.rtm.simulator import FiniteReuseSimulator
from repro.exp.figures import FigureResult
from repro.util.means import arithmetic_mean
from repro.workloads.base import run_workload

WORKLOADS = ("compress", "li", "hydro2d", "go", "vortex", "su2cor")
BUDGET = 12_000


def _run():
    traces = {n: run_workload(n, max_instructions=BUDGET) for n in WORKLOADS}
    rows = []
    for heuristic in (ILRHeuristic(expand=False), ILRHeuristic(expand=True),
                      FixedLengthHeuristic(4)):
        for reuse_test in ("compare", "invalidate"):
            pcts, invals = [], []
            for trace in traces.values():
                sim = FiniteReuseSimulator(
                    RTM_PRESETS["4K"], heuristic, reuse_test=reuse_test
                )
                result = sim.run(trace)
                pcts.append(result.percent_reused)
                invals.append(result.rtm_invalidations)
            rows.append(
                [heuristic.name, reuse_test, arithmetic_mean(pcts),
                 arithmetic_mean(invals)]
            )
    return rows


def test_ablation_reuse_test_schemes(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    fig = FigureResult(
        figure_id="ablation_reuse_test",
        title="Ablation: value-compare vs valid-bit reuse test (4K RTM)",
        headers=["heuristic", "reuse_test", "reused_pct", "invalidations"],
        rows=rows,
    )
    report(fig)

    by_key = {(row[0], row[1]): row[2] for row in rows}
    for heuristic in ("ILR NE", "ILR EXP", "I4 EXP"):
        compare = by_key[(heuristic, "compare")]
        invalidate = by_key[(heuristic, "invalidate")]
        # the valid-bit scheme is conservative: it can only lose reuse
        assert invalidate <= compare + 1e-9, heuristic
    # it still finds *some* reuse for the ILR heuristics
    assert by_key[("ILR EXP", "invalidate")] > 0
