"""Ablation: basic-block reuse (Huang & Lilja) vs unrestricted traces.

The paper positions basic-block reuse as a special case of trace-level
reuse ("traces are limited to basic blocks") and argues trace-level
reuse is more general — traces span loops and subroutines.  This
ablation quantifies that: clipping the maximal reusable runs at
basic-block boundaries must not increase, and typically reduces, the
speed-up, because each reuse operation amortises over fewer
instructions and chains across blocks are no longer collapsed.
"""

from repro.baselines.block import basic_block_spans
from repro.baselines.ilr import instruction_reusability
from repro.core.reuse_tlr import ConstantReuseLatency, tlr_reuse_plan
from repro.core.traces import maximal_reusable_spans, spans_from_ranges
from repro.dataflow.model import DataflowModel
from repro.exp.figures import FigureResult
from repro.util.means import harmonic_mean
from repro.workloads.base import run_workload

WORKLOADS = ("hydro2d", "turb3d", "compress", "li", "gcc", "ijpeg")
BUDGET = 20_000


def _compare(name: str) -> tuple[float, float, float, float]:
    trace = run_workload(name, max_instructions=BUDGET)
    flags = instruction_reusability(trace).flags
    model = DataflowModel(window_size=256)
    base = model.analyze(trace)

    trace_spans = maximal_reusable_spans(trace, flags)
    block_spans = spans_from_ranges(trace, basic_block_spans(trace, flags))

    latency = ConstantReuseLatency(1.0)
    tlr = model.analyze(trace, tlr_reuse_plan(trace, trace_spans, latency))
    blk = model.analyze(trace, tlr_reuse_plan(trace, block_spans, latency))

    avg_trace = sum(s.length for s in trace_spans) / max(len(trace_spans), 1)
    avg_block = sum(s.length for s in block_spans) / max(len(block_spans), 1)
    return tlr.speedup_over(base), blk.speedup_over(base), avg_trace, avg_block


def test_ablation_block_vs_trace(benchmark, report):
    rows = benchmark.pedantic(
        lambda: [(name, *_compare(name)) for name in WORKLOADS],
        rounds=1,
        iterations=1,
    )
    fig = FigureResult(
        figure_id="ablation_block",
        title="Ablation: unrestricted traces vs basic-block-clipped traces "
        "(256-entry window, 1-cycle reuse)",
        headers=["program", "trace_speedup", "block_speedup",
                 "trace_size", "block_size"],
        rows=[list(r) for r in rows],
    )
    fig.rows.append(
        [
            "AVERAGE",
            harmonic_mean([r[1] for r in rows]),
            harmonic_mean([r[2] for r in rows]),
            sum(r[3] for r in rows) / len(rows),
            sum(r[4] for r in rows) / len(rows),
        ]
    )
    report(fig)

    for name, tlr_su, blk_su, t_size, b_size in rows:
        # clipping can only shrink traces...
        assert b_size <= t_size + 1e-9, name
        # ...and never increases the speed-up beyond a rounding hair
        assert blk_su <= tlr_su * 1.02 + 1e-9, name
    # on the whole suite the generality of traces buys real speed-up
    avg_tlr = harmonic_mean([r[1] for r in rows])
    avg_blk = harmonic_mean([r[2] for r in rows])
    assert avg_tlr >= avg_blk
