"""Shared fixtures for the figure-regeneration benchmarks.

The benchmark suite regenerates every table and figure of the paper's
evaluation.  Profiles are computed once per session at ``BUDGET``
dynamic instructions per kernel (the analogue of the paper's fixed
50M-instruction windows, scaled to the pure-Python substrate) and
shared across the per-figure benchmarks.  Each benchmark prints the
regenerated rows and also writes them under ``benchmarks/results/``.

Repeat sessions are fast: traces and profiles are memoised on disk by
:mod:`repro.vm.tracecache`, so only the first session after a code
change pays for VM execution and analysis.  Set ``REPRO_TRACE_CACHE=0``
(or ``REPRO_BENCH_NO_CACHE=1``) to force cold runs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.exp.config import ExperimentConfig
from repro.exp.report import render
from repro.exp.runner import collect_profiles

#: per-kernel dynamic instruction budget for figures 3-8
BUDGET = int(os.environ.get("REPRO_BENCH_BUDGET", "40000"))
#: reduced budget for the finite-RTM grid (560 simulations)
FIG9_BUDGET = int(os.environ.get("REPRO_BENCH_FIG9_BUDGET", "10000"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    use_cache = os.environ.get("REPRO_BENCH_NO_CACHE", "0") != "1"
    return ExperimentConfig(max_instructions=BUDGET, use_cache=use_cache)


@pytest.fixture(scope="session")
def profiles(config):
    """Per-benchmark analysis profiles, computed once per session.

    The sweep records a run manifest (see :mod:`repro.obs`) when the
    cache is enabled; a kernel that fails to profile fails the whole
    benchmark session loudly rather than silently thinning the
    figures.
    """
    run = collect_profiles(config)
    if not run.ok:
        detail = "; ".join(
            f"{f.name}: {f.kind}: {f.message}" for f in run.failures
        )
        manifest = f" (manifest: {run.manifest_path})" if run.manifest_path else ""
        raise RuntimeError(f"profile sweep had failures{manifest}: {detail}")
    return run


@pytest.fixture
def report(capsys):
    """Print a figure result to the real terminal and archive it."""

    def _report(result):
        text = render(result)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.figure_id}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _report
