"""Ablation: value prediction vs data value reuse (Sodani & Sohi [14]).

The paper cites the prediction/reuse distinction: prediction supplies
a result without waiting for operands (speculative), reuse waits for
operands but is exact — and trace-level reuse amortises one operation
over many instructions.  The regenerated table shows coverage and
256-entry-window speed-up for last-value and stride predictors next
to instruction- and trace-level reuse.
"""

from repro.exp.extensions import prediction_vs_reuse, warmup_sweep, window_sweep

WORKLOADS = ("compress", "turb3d", "li", "gcc", "hydro2d", "applu")


def test_ablation_prediction_vs_reuse(benchmark, report):
    fig = benchmark.pedantic(
        prediction_vs_reuse,
        args=(WORKLOADS,),
        kwargs={"max_instructions": 15_000},
        rounds=1,
        iterations=1,
    )
    report(fig)

    # reuse covers more instructions than last-value prediction on
    # these repetitive kernels...
    assert fig.value("AVERAGE", "reusable_pct") > fig.value("AVERAGE", "lv_pred_pct")
    # ...and trace-level reuse delivers the largest speed-up
    tlr = fig.value("AVERAGE", "tlr_speedup")
    for col in ("lv_speedup", "stride_speedup", "ilr_speedup"):
        assert tlr >= fig.value("AVERAGE", col) - 1e-9


def test_ext_window_sweep(benchmark, report):
    fig = benchmark.pedantic(
        window_sweep,
        args=(("compress", "hydro2d", "li", "go"),),
        kwargs={"max_instructions": 15_000},
        rounds=1,
        iterations=1,
    )
    report(fig)
    ipcs = [row[1] for row in fig.rows]
    assert ipcs == sorted(ipcs), "base IPC grows with window size"
    assert all(row[2] >= 1.0 - 1e-9 for row in fig.rows)


def test_ext_warmup_sensitivity(benchmark, report):
    fig = benchmark.pedantic(
        warmup_sweep,
        args=(("compress", "li", "applu"),),
        kwargs={"budgets": (5_000, 20_000, 60_000)},
        rounds=1,
        iterations=1,
    )
    report(fig)
    rates = [row[1] for row in fig.rows]
    assert rates == sorted(rates), "reusability grows as warm-up amortises"
