"""Extension: cycle-level timing of the realistic finite-RTM engine.

The paper's figure 9 measures how many instructions a finite RTM can
reuse; this extension composes those reuse decisions with the cycle-
level pipeline model (section 3 / figure 2 integration) to report the
*speed-up* a realistic engine delivers on a bounded 4-wide core —
bridging the limit study (figures 6/8) and the implementation study
(figure 9).
"""

from repro.exp.extensions import realistic_engine_timing

WORKLOADS = ("compress", "li", "gcc", "go", "vortex", "turb3d")


def test_ext_realistic_engine_timing(benchmark, report):
    fig = benchmark.pedantic(
        realistic_engine_timing,
        args=(WORKLOADS,),
        kwargs={"max_instructions": 8_000},
        rounds=1,
        iterations=1,
    )
    report(fig)

    avg = fig.row_for("AVERAGE")
    headers = fig.headers
    # reuse never slows the core down in this model
    for row in fig.rows:
        for col, value in zip(headers, row):
            if col.startswith("speedup@"):
                assert value >= 1.0 - 1e-9, row[0]
    # a bigger RTM never reuses fewer instructions on average
    assert fig.value("AVERAGE", "reused_pct@256K") >= fig.value(
        "AVERAGE", "reused_pct@4K"
    ) - 1e-9
    # the engine delivers a real average speed-up at 256K entries
    assert fig.value("AVERAGE", "speedup@256K") > 1.02
