"""Section 4.5: per-trace input/output statistics.

Paper result: averaged over reused traces — 6.5 inputs (2.7 register +
3.8 memory), 5.0 outputs (3.3 register + 1.7 memory), 15.0
instructions per trace.  Per reused instruction that is 0.43 reads and
0.33 writes: far below the bandwidth of actually executing the
instructions, so trace reuse also relieves register/memory port
pressure.
"""

from repro.exp.figures import trace_io_summary


def test_sec45_trace_io_statistics(benchmark, profiles, report):
    fig = benchmark.pedantic(
        trace_io_summary, args=(profiles,), rounds=3, iterations=1
    )
    report(fig)

    reads = fig.value("AVERAGE", "reads_per_instr")
    writes = fig.value("AVERAGE", "writes_per_instr")
    # the paper's bandwidth argument: well under one read and one
    # write per reused instruction (paper: 0.43 and 0.33)
    assert reads < 1.0
    assert writes < 1.0

    # trace-level sanity: traces have a handful of live-ins/live-outs
    assert 1.0 <= fig.value("AVERAGE", "avg_inputs") <= 12.0
    assert 1.0 <= fig.value("AVERAGE", "avg_outputs") <= 12.0
    assert fig.value("AVERAGE", "trace_size") > 3.0
