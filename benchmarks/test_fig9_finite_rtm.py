"""Figure 9: finite Reuse Trace Memory study.

Paper result: (a) reusability grows strongly with RTM capacity (about
25% of dynamic instructions at 4K entries, around 60% at 256K);
(b) average reused-trace size grows with the I(n) heuristic's n, and
dynamic expansion (ILR EXP) grows traces relative to ILR NE; larger
traces trade away some reusability (the figure's headline trade-off).
The full grid is 10 heuristics x 4 RTM sizes, averaged over the suite.
"""

from repro.exp.config import ExperimentConfig
from repro.exp.figures import figure9

from conftest import FIG9_BUDGET


def test_fig9_finite_rtm_grid(benchmark, report):
    config = ExperimentConfig(max_instructions=FIG9_BUDGET)
    fig = benchmark.pedantic(figure9, args=(config,), rounds=1, iterations=1)
    report(fig)

    cells = {(row[0], row[1]): (row[2], row[3]) for row in fig.rows}

    # (a) reusability grows (weakly) with RTM capacity for every heuristic
    heuristics = sorted({h for h, _ in cells})
    for h in heuristics:
        small_pct = cells[(h, "512")][0]
        big_pct = cells[(h, "256K")][0]
        assert big_pct >= small_pct - 1.0, f"{h}: more capacity should not hurt"

    # (b) I(n) trace size grows with n...
    sizes_by_n = [cells[(f"I{n} EXP", "256K")][1] for n in range(1, 9)]
    assert sizes_by_n == sorted(sizes_by_n)
    # ...and reusability pays for it (the paper's trade-off)
    pct_by_n = [cells[(f"I{n} EXP", "256K")][0] for n in range(1, 9)]
    assert pct_by_n[0] > pct_by_n[-1]

    # dynamic expansion grows traces relative to no-expansion
    assert cells[("ILR EXP", "256K")][1] >= cells[("ILR NE", "256K")][1]

    # reuse percentages are meaningful fractions of the stream
    assert any(pct > 5.0 for pct, _ in cells.values())
