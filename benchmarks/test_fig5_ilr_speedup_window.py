"""Figure 5: instruction-level reuse speed-up, 256-entry window.

Paper result: very similar to the infinite window (average 1.43 vs
1.50), with the extreme programs pulled towards the middle, and the
same rapid decay when the reuse latency exceeds one cycle.
"""

from repro.exp.figures import figure5


def test_fig5_ilr_speedup_finite_window(benchmark, profiles, config, report):
    fig = benchmark.pedantic(
        figure5, args=(profiles, config), rounds=3, iterations=1
    )
    report(fig)

    average = fig.value("AVERAGE", "speedup")
    assert average >= 1.0 - 1e-9

    # (b) the latency sweep decays monotonically, like figure 4b
    sweep = [fig.value(f"AVG@latency={lat}", "speedup") for lat in (1, 2, 3, 4)]
    assert sweep == sorted(sweep, reverse=True)

    rates = {
        row[0]: row[1]
        for row in fig.rows
        if not str(row[0]).startswith(("AVG", "AVERAGE"))
    }
    assert all(r >= 1.0 - 1e-9 for r in rates.values())
