"""Figure 3: instruction-level reusability for a perfect engine.

Paper result: reusability is very high — 88% on average, ranging from
53% (applu) to 99% (hydro2d), with INT and FP suites broadly similar.
The regenerated table must reproduce that *shape*: a high average,
applu at the bottom of the range, hydro2d near the top.
"""

from repro.baselines.ilr import instruction_reusability
from repro.exp.figures import figure3
from repro.workloads.base import run_workload


def test_fig3_reusability_table(benchmark, profiles, report):
    fig = benchmark.pedantic(figure3, args=(profiles,), rounds=3, iterations=1)
    report(fig)

    average = fig.value("AVERAGE", "reusable_pct")
    assert 60.0 <= average <= 100.0, "average reusability should be high"

    rates = {
        row[0]: row[1]
        for row in fig.rows
        if not str(row[0]).startswith(("AVG", "AVERAGE"))
    }
    # applu is the least reusable program (paper: 53%)
    assert min(rates, key=rates.get) == "applu"
    # hydro2d sits near the top of the range (paper: 99%)
    assert rates["hydro2d"] >= sorted(rates.values())[len(rates) // 2]
    # every program exhibits substantial repetition
    assert all(r > 20.0 for r in rates.values())


def test_fig3_reusability_analysis_cost(benchmark):
    """Cost of the infinite-history reusability pass itself."""
    trace = run_workload("compress", max_instructions=10_000)
    result = benchmark(instruction_reusability, trace)
    assert result.total_count == 10_000
