"""Extension: reuse-distance capacity curve.

Explains figure 9's capacity axis from first principles: a fully
associative LRU signature table of capacity C captures exactly the
reuses whose Mattson stack distance is below C.  The curve's knee
shows where additional RTM capacity stops paying — the saturation our
figure-9 reproduction observes above 32K entries at small budgets.
"""

from repro.baselines.reuse_distance import capacity_hit_curve

WORKLOADS = ("compress", "li", "gcc", "hydro2d", "applu", "vortex")


def test_ext_reuse_distance_curve(benchmark, report):
    fig = benchmark.pedantic(
        capacity_hit_curve,
        args=(WORKLOADS,),
        kwargs={
            "capacities": (64, 256, 1024, 4096, 16384, 65536),
            "max_instructions": 20_000,
        },
        rounds=1,
        iterations=1,
    )
    report(fig)

    rates = [row[1] for row in fig.rows]
    # hit rate grows monotonically with capacity...
    assert rates == sorted(rates)
    # ...with diminishing returns: the last doubling buys less than
    # the first one
    first_gain = rates[1] - rates[0]
    last_gain = rates[-1] - rates[-2]
    assert last_gain <= first_gain + 1e-9
    # large tables approach the infinite-history reusability
    assert rates[-1] > 40.0
