"""Figure 8: trace-level reuse speed-up vs reuse latency (256-entry window).

Paper result: (a) unlike instruction-level reuse, TLR keeps most of
its benefit as the constant reuse latency grows from 1 to 4 cycles —
one reuse operation amortises over a whole trace.  (b) With a latency
proportional to the trace's I/O size (K x (inputs+outputs)), the
speed-up is still high for realistic bandwidths: the paper calls out
K=1/16 (~2.7 average), degrading gracefully as K grows toward 1.
"""

from repro.exp.figures import figure4, figure5, figure8


def test_fig8_latency_sensitivity(benchmark, profiles, config, report):
    fig = benchmark.pedantic(
        figure8, args=(profiles, config), rounds=3, iterations=1
    )
    report(fig)

    constant = [fig.value(f"constant@{lat}cyc", "speedup") for lat in (1, 2, 3, 4)]
    # monotone decay...
    assert constant == sorted(constant, reverse=True)
    # ...but much gentler than ILR's (paper's figure 8a vs 5b): TLR
    # retains most of its speed-up at 4 cycles
    assert constant[3] >= 0.5 * constant[0]
    assert constant[3] > 1.0

    proportional = [
        fig.value(f"proportional@K=1/{k}", "speedup") for k in (32, 16, 8, 4, 2, 1)
    ]
    assert proportional == sorted(proportional, reverse=True)
    # the paper's reference point: K=1/16 keeps most of the benefit
    assert fig.value("proportional@K=1/16", "speedup") > 1.0
    assert (
        fig.value("proportional@K=1/16", "speedup")
        >= 0.6 * fig.value("constant@1cyc", "speedup")
    )


def test_fig8_tlr_degrades_slower_than_ilr(profiles, config):
    """Contrast with figure 5b: ILR loses proportionally more of its
    benefit between 1 and 4 cycles than TLR does."""
    fig5 = figure5(profiles, config)
    fig8 = figure8(profiles, config)
    ilr_1 = fig5.value("AVG@latency=1", "speedup") - 1.0
    ilr_4 = fig5.value("AVG@latency=4", "speedup") - 1.0
    tlr_1 = fig8.value("constant@1cyc", "speedup") - 1.0
    tlr_4 = fig8.value("constant@4cyc", "speedup") - 1.0
    if ilr_1 > 0.01:  # only meaningful when ILR had a benefit to lose
        assert tlr_4 / tlr_1 >= ilr_4 / ilr_1 - 0.05
