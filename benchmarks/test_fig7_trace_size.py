"""Figure 7: average maximal reusable trace size.

Paper result: INT programs have fairly uniform trace sizes (14.5-36.7
instructions); FP programs split into two camps — applu/apsi/fpppp
with very short traces and low speed-up, versus hydro2d with traces up
to 203 instructions and the longest in the suite.  Larger traces
correlate with higher trace-reuse speed-ups.
"""

from repro.exp.figures import figure6, figure7


def test_fig7_trace_sizes(benchmark, profiles, report):
    fig = benchmark.pedantic(figure7, args=(profiles,), rounds=3, iterations=1)
    report(fig)

    sizes = {
        row[0]: row[1]
        for row in fig.rows
        if not str(row[0]).startswith(("AVG", "AVERAGE"))
    }
    # hydro2d has the largest traces in the suite (paper: 203)
    assert max(sizes, key=sizes.get) == "hydro2d"
    # the short-trace FP camp: applu and fpppp
    assert sizes["applu"] < 10 and sizes["fpppp"] < 10
    assert sizes["hydro2d"] > 10 * sizes["applu"]


def test_fig7_trace_size_correlates_with_speedup(profiles):
    """The paper's observation: larger traces => higher speed-ups."""
    fig7 = figure7(profiles)
    fig6 = figure6(profiles)
    names = [
        row[0]
        for row in fig7.rows
        if not str(row[0]).startswith(("AVG", "AVERAGE"))
    ]
    sizes = [fig7.value(n, "avg_trace_size") for n in names]
    speedups = [fig6.value(n, "speedup_w256") for n in names]
    # rank correlation must be clearly positive
    def ranks(vals):
        order = sorted(range(len(vals)), key=lambda i: vals[i])
        out = [0] * len(vals)
        for rank, idx in enumerate(order):
            out[idx] = rank
        return out

    rs, rp = ranks(sizes), ranks(speedups)
    n = len(names)
    d2 = sum((a - b) ** 2 for a, b in zip(rs, rp))
    spearman = 1 - 6 * d2 / (n * (n * n - 1))
    assert spearman > 0.3, f"trace size should correlate with speed-up ({spearman=})"
