"""Ablations on the RTM design choices DESIGN.md calls out.

1. Per-trace I/O limits: the paper fixes 8 register + 4 memory values
   per side.  Sweeping the limits shows the trade-off: tighter limits
   truncate collection (smaller traces, possibly more of them);
   looser limits admit longer traces per reuse operation.
2. RTM organisation at fixed capacity: ways vs traces-per-PC.  More
   traces per PC helps codes with many input variants per trace head;
   more ways reduces conflict between different PCs.
"""

from repro.core.rtm.collector import ILRHeuristic
from repro.core.rtm.memory import RTMConfig
from repro.core.rtm.simulator import FiniteReuseSimulator
from repro.core.traces import TraceLimits
from repro.exp.figures import FigureResult
from repro.util.means import arithmetic_mean
from repro.workloads.base import run_workload

WORKLOADS = ("compress", "li", "hydro2d", "go")
BUDGET = 12_000

LIMIT_SWEEP = [
    ("2r/1m", TraceLimits(2, 1, 2, 1)),
    ("4r/2m", TraceLimits(4, 2, 4, 2)),
    ("8r/4m (paper)", TraceLimits(8, 4, 8, 4)),
    ("16r/8m", TraceLimits(16, 8, 16, 8)),
]

ORG_SWEEP = [
    ("128s x 4w x 8t", RTMConfig("4K-a", 128, 4, 8)),
    ("128s x 8w x 4t", RTMConfig("4K-b", 128, 8, 4)),
    ("128s x 16w x 2t", RTMConfig("4K-c", 128, 16, 2)),
    ("512s x 4w x 2t", RTMConfig("4K-d", 512, 4, 2)),
]


def _run_limits():
    traces = {n: run_workload(n, max_instructions=BUDGET) for n in WORKLOADS}
    rows = []
    for label, limits in LIMIT_SWEEP:
        pcts, sizes = [], []
        for name, trace in traces.items():
            sim = FiniteReuseSimulator(
                RTMConfig("4K", 128, 4, 8), ILRHeuristic(expand=True), limits=limits
            )
            result = sim.run(trace)
            pcts.append(result.percent_reused)
            sizes.append(result.avg_reused_trace_size)
        rows.append([label, arithmetic_mean(pcts), arithmetic_mean(sizes)])
    return rows


def _run_orgs():
    traces = {n: run_workload(n, max_instructions=BUDGET) for n in WORKLOADS}
    rows = []
    for label, config in ORG_SWEEP:
        pcts = []
        for name, trace in traces.items():
            sim = FiniteReuseSimulator(config, ILRHeuristic(expand=True))
            pcts.append(sim.run(trace).percent_reused)
        rows.append([label, arithmetic_mean(pcts)])
    return rows


def test_ablation_io_limits(benchmark, report):
    rows = benchmark.pedantic(_run_limits, rounds=1, iterations=1)
    fig = FigureResult(
        figure_id="ablation_io_limits",
        title="Ablation: per-trace I/O limits (ILR EXP, 4K-entry RTM)",
        headers=["limits", "reused_pct", "avg_trace_size"],
        rows=rows,
    )
    report(fig)
    sizes = [row[2] for row in rows]
    # looser limits admit longer traces
    assert sizes == sorted(sizes)
    # every configuration still finds reuse
    assert all(row[1] > 0 for row in rows)


def test_ablation_rtm_organisation(benchmark, report):
    rows = benchmark.pedantic(_run_orgs, rounds=1, iterations=1)
    fig = FigureResult(
        figure_id="ablation_rtm_org",
        title="Ablation: RTM organisation at fixed 4K capacity",
        headers=["organisation", "reused_pct"],
        rows=rows,
    )
    report(fig)
    assert all(row[1] > 0 for row in rows)
    # the paper's organisation is competitive with the alternatives
    paper = rows[0][1]
    assert paper >= max(row[1] for row in rows) * 0.5
