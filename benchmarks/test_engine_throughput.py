"""Throughput of the substrate itself (not a paper figure).

Tracks the simulation cost of the three hot paths so performance
regressions in the interpreter, the dataflow pass or the finite-RTM
engine are visible: the whole evaluation is bounded by these loops.
"""

from repro.core.rtm.collector import ILRHeuristic
from repro.core.rtm.memory import RTM_PRESETS
from repro.core.rtm.simulator import FiniteReuseSimulator
from repro.dataflow.model import DataflowModel
from repro.vm.machine import Machine
from repro.workloads.base import build_program, run_workload

N = 10_000


def test_vm_interpretation_throughput(benchmark):
    program = build_program("compress")

    def run():
        return Machine(program).run(max_instructions=N)

    trace = benchmark(run)
    assert len(trace) == N


def test_dataflow_pass_throughput(benchmark):
    trace = run_workload("compress", max_instructions=N)
    model = DataflowModel(window_size=256)
    result = benchmark(model.analyze, trace)
    assert result.instruction_count == N


def test_finite_rtm_engine_throughput(benchmark):
    trace = run_workload("compress", max_instructions=N)

    def run():
        sim = FiniteReuseSimulator(RTM_PRESETS["4K"], ILRHeuristic(expand=True))
        return sim.run(trace)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.total_instructions == N
