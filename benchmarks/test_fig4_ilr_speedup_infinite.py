"""Figure 4: instruction-level reuse speed-up, infinite window.

Paper result: (a) modest average speed-up (~1.5) despite ~90%
reusability, because ILR cannot break dependence chains — it only
shaves the latency of repeated high-latency operations; a few programs
(turb3d 4.0, compress 2.5) benefit substantially.  (b) The benefit
decays quickly as the reuse latency grows from 1 to 4 cycles.
"""

from repro.baselines.ilr import ilr_reuse_plan, instruction_reusability
from repro.dataflow.model import DataflowModel
from repro.exp.figures import figure4
from repro.workloads.base import run_workload


def test_fig4_ilr_speedup_infinite_window(benchmark, profiles, config, report):
    fig = benchmark.pedantic(
        figure4, args=(profiles, config), rounds=3, iterations=1
    )
    report(fig)

    average = fig.value("AVERAGE", "speedup")
    assert 1.0 <= average <= 3.0, "ILR benefit is modest on average"

    rates = {
        row[0]: row[1]
        for row in fig.rows
        if not str(row[0]).startswith(("AVG", "AVERAGE"))
    }
    # turb3d shows the largest ILR benefit (paper: 4.0)
    assert max(rates, key=rates.get) == "turb3d"
    assert rates["turb3d"] > 1.5

    # (b) benefit decays with reuse latency
    sweep = [fig.value(f"AVG@latency={lat}", "speedup") for lat in (1, 2, 3, 4)]
    assert sweep == sorted(sweep, reverse=True)
    assert sweep[3] <= sweep[0]


def test_fig4_timing_analysis_cost(benchmark):
    """Cost of one reuse-aware dataflow pass (the inner loop of the
    whole limit study)."""
    trace = run_workload("turb3d", max_instructions=10_000)
    flags = instruction_reusability(trace).flags
    plan = ilr_reuse_plan(trace, flags, 1.0)
    model = DataflowModel(window_size=None)
    result = benchmark(model.analyze, trace, plan)
    assert result.instruction_count == 10_000
